"""Domain-sharded parallel LTJ execution and batched query scheduling.

Submodules:

* :mod:`repro.parallel.executor` — intra-query parallelism: shard the
  first variable's leapfrog-intersected candidate range across a
  multiprocessing pool, merge shard streams in shard order so results
  and trace op counts are byte-identical to the serial engines.
* :mod:`repro.parallel.scheduler` — inter-query batching: classify a
  batch via the ``auto`` engine's estimates and multiplex it over the
  same pool.
* :mod:`repro.parallel.worker` — the code that runs inside pool workers.
* :mod:`repro.parallel.shm` — shared-memory flatten/attach transport for
  the succinct indexes (workers rebuild them zero-copy, no pickling).
* :mod:`repro.parallel.forced` — the ``REPRO_PARALLEL_WORKERS`` /
  ``REPRO_PARALLEL_START_METHOD`` CI smoke hooks.

This package initializer is deliberately import-light: the serial
engines consult :mod:`repro.parallel.forced` at import time, while the
executor/scheduler import the engines — eager re-exports here would
close that cycle. Public names resolve lazily (PEP 562).
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    "DEFAULT_WORKERS": "repro.parallel.executor",
    "ParallelOutcome": "repro.parallel.executor",
    "SHARDS_PER_WORKER": "repro.parallel.executor",
    "WorkerPool": "repro.parallel.executor",
    "close_pools_for": "repro.parallel.executor",
    "evaluate_parallel": "repro.parallel.executor",
    "pool_for": "repro.parallel.executor",
    "shutdown_pools": "repro.parallel.executor",
    "DEFAULT_PARALLEL_THRESHOLD": "repro.parallel.scheduler",
    "MAX_BATCH_SIZE": "repro.parallel.scheduler",
    "QueryScheduler": "repro.parallel.scheduler",
    "ScheduledQuery": "repro.parallel.scheduler",
    "QueryBatchTask": "repro.parallel.worker",
    "QueryOutcome": "repro.parallel.worker",
    "QueryTask": "repro.parallel.worker",
    "ShardOutcome": "repro.parallel.worker",
    "ShardTask": "repro.parallel.worker",
    "run_query": "repro.parallel.worker",
    "run_query_batch": "repro.parallel.worker",
    "run_shard": "repro.parallel.worker",
    "unpack_solutions": "repro.parallel.worker",
    "AttachedShm": "repro.parallel.shm",
    "ScratchBuffer": "repro.parallel.shm",
    "ShmManifest": "repro.parallel.shm",
    "StructureShm": "repro.parallel.shm",
    "active_segments": "repro.parallel.shm",
    "attach": "repro.parallel.shm",
    "ENV_START_METHOD": "repro.parallel.forced",
    "ENV_WORKERS": "repro.parallel.forced",
    "forced_start_method": "repro.parallel.forced",
    "forced_workers": "repro.parallel.forced",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(name)
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
