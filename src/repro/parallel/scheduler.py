"""Batched query scheduling over the shared worker pool.

Inter-query batching complements the executor's intra-query sharding:
given a batch of extended BGPs, the scheduler classifies each query —
using the same ``auto`` strategy selection and the compiled relations'
``l_x`` estimates the serial engines already expose — as either
*parallel-worthy* (its first-variable candidate range is large enough
that domain-sharding pays for the pool round trip) or *small* (the
whole query is cheaper than the dispatch overhead of sharding it).

Parallel-worthy queries are domain-sharded one at a time so each gets
the full pool; small queries are *grouped* — many queries per worker
round trip (:class:`QueryBatchTask`) — with the groups filled LPT-style
(descending cost, round-robin) so one expensive query cannot serialize
a whole group behind it. The LPT cost starts as the optimizer's
first-level estimate, but every completed batch feeds its measured
per-query wall times back into the scheduler: queries with the same
*shape signature* (selected engine, triple/similarity/distance clause
counts) as an already-served query are costed by an exponential moving
average of the observed seconds instead, and unseen shapes scale their
estimate by the observed seconds-per-estimate-unit ratio. A
long-running server therefore converges to grouping by how long
queries actually take, not by how long the estimates guessed. The pool itself is warm and shared:
its shm segments are created once per database and reused across
``run_batch`` calls, which is what :meth:`QueryScheduler.warmup` plus
the bench harness's warmup/steady split measure. Results come back in
input order and each is the byte-identical :class:`QueryResult` the
serial ``auto`` engine would have produced for that query.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.engines.auto import AutoEngine
from repro.engines.result import QueryResult
from repro.ltj.stats import EvaluationStats
from repro.parallel.executor import (
    DEFAULT_WORKERS,
    close_pools_for,
    evaluate_parallel,
    pool_for,
)
from repro.parallel.worker import (
    QueryBatchTask,
    QueryOutcome,
    QueryTask,
    unpack_solutions,
)
from repro.query.model import ExtendedBGP, Var

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engines.database import GraphDatabase

#: First-variable candidate estimate above which a query is worth
#: domain-sharding. Below it, pool dispatch overhead dominates.
DEFAULT_PARALLEL_THRESHOLD = 256

#: Ceiling on queries served per worker round trip. Groups are also
#: capped in *number* (>= 2x pool size) so short batches still spread
#: across all workers.
MAX_BATCH_SIZE = 8

#: Smoothing factor of the observed-cost moving averages: each new
#: measurement moves the per-signature EWMA 30% of the way to itself,
#: so the scheduler adapts within a few batches without letting one
#: noisy wall time dominate.
FEEDBACK_ALPHA = 0.3

#: Capacity of the observed-cost EWMA table. Shape signatures are
#: coarse, but a long-running server fed adversarial query text could
#: still mint unbounded distinct shapes — the table is LRU-bounded
#: (least-recently *updated* out first) so it cannot grow without
#: limit.
MAX_OBSERVED_SHAPES = 1024


def query_signature(
    engine: str, query: ExtendedBGP
) -> tuple[str, int, int, int]:
    """Shape signature under which observed wall times are aggregated.

    Queries with the same selected engine and the same triple /
    similarity-clause / distance-clause counts get one cost bucket:
    coarse enough that a server sees repeats, fine enough that Q1-style
    point lookups never share a bucket with Q5-style cycles.
    """
    return (
        engine,
        len(query.triples),
        len(query.clauses),
        len(query.dist_clauses),
    )


@dataclass(frozen=True)
class ScheduledQuery:
    """Classification of one batch member."""

    index: int
    route: str
    """``"parallel"`` (domain-sharded), ``"pooled"`` (whole query in one
    worker) or ``"serial"`` (evaluated in the scheduler's process)."""

    engine: str
    """Serial strategy selected by ``auto`` for this query."""

    estimate: int
    """Smallest per-variable candidate estimate — an upper bound on the
    first leapfrog level's size under either ordering."""

    reason: str

    signature: tuple[str, int, int, int] = ("", 0, 0, 0)
    """Shape bucket (:func:`query_signature`) that observed wall times
    of this query feed into — and are read back from when grouping."""


class QueryScheduler:
    """Classify and run a batch of queries over one worker pool."""

    def __init__(
        self,
        db: "GraphDatabase",
        workers: int = DEFAULT_WORKERS,
        parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
        exact_estimates: bool = False,
        max_pending: int | None = None,
        cache: object | None = None,
    ) -> None:
        self._db = db
        self._auto = AutoEngine(db, exact_estimates=exact_estimates)
        self._exact_estimates = exact_estimates
        self.workers = int(workers)
        self.parallel_threshold = parallel_threshold
        self.max_pending = (
            max_pending if max_pending is not None else 2 * max(1, workers)
        )
        #: Optional :class:`repro.cache.QueryCache` probed before any
        #: classification/dispatch and filled from completed results.
        self.cache = cache
        #: EWMA of observed per-query seconds, keyed by shape signature
        #: and LRU-bounded at :data:`MAX_OBSERVED_SHAPES` (least
        #: recently updated shape evicted first).
        self._observed_s: OrderedDict[
            tuple[str, int, int, int], float
        ] = OrderedDict()
        #: EWMA of observed seconds per estimate unit, the bridge that
        #: prices still-unseen shapes in the same currency.
        self._seconds_per_unit: float | None = None

    def _driver(self, name: str):
        if name == self._auto._ring_knn_s.name:
            return self._auto._ring_knn_s
        return self._auto._ring_knn

    # ------------------------------------------------------------------
    # measured-cost feedback
    # ------------------------------------------------------------------
    def record_elapsed(self, plan: ScheduledQuery, elapsed: float) -> None:
        """Fold one measured wall time into the cost model.

        Called for every pooled query a batch completes; harmless to
        call for anything else with a signature. Negative or zero
        times (a worker clock hiccup) are ignored.
        """
        if elapsed <= 0.0:
            return
        previous = self._observed_s.get(plan.signature)
        self._observed_s[plan.signature] = (
            elapsed
            if previous is None
            else previous + FEEDBACK_ALPHA * (elapsed - previous)
        )
        self._observed_s.move_to_end(plan.signature)
        while len(self._observed_s) > MAX_OBSERVED_SHAPES:
            self._observed_s.popitem(last=False)
        if plan.estimate > 0:
            unit = elapsed / plan.estimate
            self._seconds_per_unit = (
                unit
                if self._seconds_per_unit is None
                else self._seconds_per_unit
                + FEEDBACK_ALPHA * (unit - self._seconds_per_unit)
            )

    def observed_cost(self, plan: ScheduledQuery) -> float | None:
        """The EWMA seconds recorded for ``plan``'s shape, if any."""
        return self._observed_s.get(plan.signature)

    def _lpt_cost(self, plan: ScheduledQuery) -> float:
        """Predicted seconds used as the LPT grouping weight.

        Measured shapes use their EWMA directly; unmeasured ones are
        priced as ``estimate x seconds-per-unit`` so both kinds sort in
        one currency. Before any feedback exists the fallback is the
        raw estimate — exactly the original estimate-only LPT.
        """
        observed = self._observed_s.get(plan.signature)
        if observed is not None:
            return observed
        if self._seconds_per_unit is not None:
            return plan.estimate * self._seconds_per_unit
        return float(plan.estimate)

    def warmup(self) -> None:
        """Start the pool, flatten the database into shared memory and
        wait for every worker to attach — the one-time cost ``serve``
        pays before steady-state batches."""
        if self.workers >= 2:
            pool_for(self._db, self.workers).warmup()

    def close(self) -> None:
        """Release the pools (and their shm segments) for this
        scheduler's database."""
        close_pools_for(self._db)

    def classify(self, query: ExtendedBGP, index: int = 0) -> ScheduledQuery:
        """Route one query using the serial engines' own estimates.

        The routing statistic is the minimum over variables of the
        smallest participating relation's ``estimate`` — the size the
        adaptive orderings minimize when choosing the first variable,
        hence an upper bound on the shardable candidate range.
        """
        engine = self._auto.select(query)
        signature = query_signature(engine, query)
        relations = self._driver(engine).compile(query)
        variables: set[Var] = set()
        for relation in relations:
            variables |= relation.variables
        if not variables:
            return ScheduledQuery(
                index=index,
                route="pooled",
                engine=engine,
                estimate=0,
                reason="no variables to shard",
                signature=signature,
            )
        estimate = min(
            min(
                relation.estimate(var)
                for relation in relations
                if var in relation.variables
            )
            for var in sorted(variables, key=lambda v: v.name)
        )
        if self.workers <= 1:
            route, reason = "serial", "pool size 1"
        elif estimate >= self.parallel_threshold:
            route = "parallel"
            reason = (
                f"first-level estimate {estimate} >= "
                f"threshold {self.parallel_threshold}"
            )
        else:
            route = "pooled"
            reason = (
                f"first-level estimate {estimate} < "
                f"threshold {self.parallel_threshold}"
            )
        return ScheduledQuery(
            index=index,
            route=route,
            engine=engine,
            estimate=estimate,
            reason=reason,
            signature=signature,
        )

    def _group_pooled(
        self, plans: Sequence[ScheduledQuery]
    ) -> list[list[ScheduledQuery]]:
        """Pack pooled queries into per-round-trip groups, LPT-style.

        Sorting by descending predicted cost (:meth:`_lpt_cost` — the
        measured EWMA where feedback exists, the scaled estimate where
        it doesn't) and dealing round-robin spreads the expensive
        queries across groups (so no group serializes two heavy
        queries) while still amortizing dispatch over up to
        ``MAX_BATCH_SIZE`` queries per trip. Deterministic for a given
        feedback state: ties break on input index.
        """
        if not plans:
            return []
        n_groups = min(
            len(plans),
            max(2 * self.workers, math.ceil(len(plans) / MAX_BATCH_SIZE)),
        )
        ordered = sorted(plans, key=lambda p: (-self._lpt_cost(p), p.index))
        groups: list[list[ScheduledQuery]] = [[] for _ in range(n_groups)]
        for i, plan in enumerate(ordered):
            groups[i % n_groups].append(plan)
        return [group for group in groups if group]

    def run_batch(
        self,
        queries: Sequence[ExtendedBGP],
        *,
        timeout: float | None = None,
        limit: int | None = None,
        timeouts: Sequence[float | None] | None = None,
    ) -> list[QueryResult]:
        """Evaluate a batch, returning results in input order.

        Every returned :class:`QueryResult` carries the solutions the
        serial ``auto`` engine would produce, in the same order.

        ``timeouts`` gives each query its own budget (the query server's
        per-request deadlines: by dispatch time different requests have
        different remaining budgets); it overrides the uniform
        ``timeout`` position for position.

        With a :attr:`cache` attached and no ``limit``, every query is
        probed *before* classification and dispatch — a hit skips the
        pool entirely — and every completed (un-timed-out) result fills
        the cache with the shape's observed EWMA cost as its admission
        weight.
        """
        if timeouts is not None and len(timeouts) != len(queries):
            raise ValueError(
                f"timeouts has {len(timeouts)} entries for "
                f"{len(queries)} queries"
            )
        budgets: list[float | None] = (
            list(timeouts) if timeouts is not None
            else [timeout] * len(queries)
        )
        results: list[QueryResult | None] = [None] * len(queries)
        cache = self.cache if limit is None else None
        if cache is not None:
            for index, query in enumerate(queries):
                results[index] = cache.probe(  # type: ignore[attr-defined]
                    self._db, query, engine=self._auto.select(query)
                )
        if self.workers <= 1:
            for index, query in enumerate(queries):
                if results[index] is not None:
                    continue
                outcome = self._auto.evaluate(
                    query, timeout=budgets[index], limit=limit
                )
                results[index] = outcome
                if cache is not None:
                    self._fill_cache(
                        query,
                        outcome,
                        outcome.engine,
                        query_signature(outcome.engine, query),
                    )
            return [result for result in results if result is not None]
        plans = [
            self.classify(query, index)
            for index, query in enumerate(queries)
            if results[index] is None
        ]
        if not plans:
            return [result for result in results if result is not None]
        plan_by_index = {plan.index: plan for plan in plans}

        # Small queries first: fill the pool with grouped whole-query
        # round trips through a bounded pending window...
        pool = pool_for(self._db, self.workers)
        pending: list[object] = []

        def _drain(handle: object) -> None:
            outcomes: list[QueryOutcome] = handle.get()  # type: ignore[attr-defined]
            pool.reconcile(outcomes)
            for outcome in outcomes:
                result = _result_from_outcome(outcome)
                results[outcome.index] = result
                # Feed the measured wall time back into the LPT cost
                # model so later batches group by observed seconds.
                plan = plan_by_index[outcome.index]
                self.record_elapsed(plan, outcome.elapsed)
                if cache is not None:
                    self._fill_cache(
                        queries[outcome.index],
                        result,
                        plan.engine,
                        plan.signature,
                    )

        pooled = [plan for plan in plans if plan.route == "pooled"]
        for group in self._group_pooled(pooled):
            batch = QueryBatchTask(
                tasks=tuple(
                    QueryTask(
                        uid=pool.next_uid(),
                        index=plan.index,
                        query=queries[plan.index],
                        engine=plan.engine,
                        exact_estimates=self._exact_estimates,
                        timeout=budgets[plan.index],
                        limit=limit,
                    )
                    for plan in group
                )
            )
            if len(pending) >= self.max_pending:
                _drain(pending.pop(0))
            pending.append(pool.submit_batch(batch))
        # ...then shard the big ones one at a time, each getting the
        # whole pool, while the small tail drains.
        for plan in plans:
            if plan.route != "parallel":
                continue
            driver = self._driver(plan.engine)
            outcome = evaluate_parallel(
                driver,
                queries[plan.index],
                workers=self.workers,
                timeout=budgets[plan.index],
                limit=limit,
                subplan_cache=cache,
            )
            if outcome is None:
                result = driver.evaluate(
                    queries[plan.index], timeout=budgets[plan.index],
                    limit=limit,
                )
            else:
                result = QueryResult(
                    driver.name, outcome.solutions, outcome.stats
                )
                result.phase_seconds["evaluate"] = outcome.stats.elapsed
            results[plan.index] = result
            if cache is not None:
                self._fill_cache(
                    queries[plan.index], result, plan.engine, plan.signature
                )
        for handle in pending:
            _drain(handle)
        return [result for result in results if result is not None]

    def _fill_cache(
        self,
        query: ExtendedBGP,
        result: QueryResult,
        engine: str,
        signature: tuple[str, int, int, int],
    ) -> None:
        """Admit a completed result, weighted by the shape's EWMA cost."""
        cache = self.cache
        if cache is None:
            return
        observed = self._observed_s.get(signature)
        cost = observed if observed is not None else result.elapsed
        cache.fill(  # type: ignore[attr-defined]
            self._db, query, result, engine=engine, cost_s=cost
        )


def _result_from_outcome(outcome: QueryOutcome) -> QueryResult:
    """Rehydrate a worker's :class:`QueryOutcome` into a QueryResult."""
    stats = EvaluationStats()
    stats.solutions = outcome.solutions_found
    stats.bindings = outcome.bindings
    stats.attempts = outcome.attempts
    stats.leap_calls = outcome.leap_calls
    stats.timed_out = outcome.timed_out
    stats.elapsed = outcome.elapsed
    solutions = unpack_solutions(outcome.var_names, outcome.packed)
    result = QueryResult(outcome.engine, solutions, stats)
    return result
