"""Worker-side execution of domain shards and batched whole queries.

Everything in this module runs inside :mod:`multiprocessing` pool
workers (or inline in the parent, for pools of one). The pool
initializer receives only a tiny picklable :class:`ShmManifest` and a
chunk queue: it attaches the shared-memory segment published by the
parent and rebuilds the read-only :class:`GraphDatabase` zero-copy over
it (see :mod:`repro.parallel.shm`) — no index bytes ever cross the pipe,
under fork *or* spawn.

Tasks are descriptors, not payloads: a :class:`ShardTask` carries a
``(segment, start, stop)`` span into the parent's scratch buffer rather
than the candidate list itself, and a :class:`QueryBatchTask` carries
many small queries per round trip. Solutions travel back *packed* — a
fixed variable-name tuple plus an ``int64`` row matrix — and large
results stream through the chunk queue in fixed-size chunks instead of
riding the result pipe whole.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.ltj.engine import LTJEngine
from repro.obs.trace import (
    QueryTrace,
    attach_wavelets,
    instrument_relations,
    wavelet_targets,
)
from repro.parallel import forced
from repro.parallel.shm import (
    AttachedShm,
    ShmManifest,
    attach,
    prime_hot_caches,
)
from repro.query.model import ExtendedBGP, Var

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engines.database import GraphDatabase

#: Fixed chunk size (solution rows) for streaming large results back
#: through the chunk queue instead of the pool's result pipe.
CHUNK_SOLUTIONS = 8192

_WORKER_DB: "GraphDatabase | None" = None
_WORKER_ATTACHMENT: Any = None
_CHUNK_QUEUE: Any = None

#: Worker-side cache of attached scratch (candidate-span) segments,
#: keyed by segment name. The parent replaces the scratch segment only
#: when it grows, so this holds at most one live entry plus stale ones
#: that are dropped the first time a task names a new segment.
_SCRATCH_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}


def _attach_manifest(manifest: Any) -> AttachedShm | Any:
    """Attach whichever transport the manifest describes.

    A :class:`ShmManifest` maps a shared segment; a store manifest
    (:class:`repro.store.StoreManifest`) maps the persistent index file
    directly — both yield a ``.structure`` + ``.close()`` handle over
    the same attach registry. The store import is lazy: the parallel
    package must not depend on the store package at import time.
    """
    if isinstance(manifest, ShmManifest):
        return attach(manifest)
    from repro.store import attach_store_manifest

    return attach_store_manifest(manifest)


def _init_worker(manifest: Any, chunk_queue: Any) -> None:
    """Pool initializer: attach the shared database, keep the mapping.

    The attachment is held in a module global for the worker's whole
    life; rebuilt structures start with recorder state detached (no op
    counters, no memos) by construction, so nothing inherited from the
    parent's evaluations can leak into task counts. The plain-int
    hot-path caches are primed here — at the attach boundary, inside
    the warm-up the caller already pays — so a worker's first query
    never stalls on a lazy ``tolist`` rebuild mid-evaluation.
    """
    global _WORKER_DB, _WORKER_ATTACHMENT, _CHUNK_QUEUE
    forced.mark_worker_process()
    _WORKER_ATTACHMENT = _attach_manifest(manifest)
    _WORKER_DB = _WORKER_ATTACHMENT.structure
    prime_hot_caches(_WORKER_DB)
    _CHUNK_QUEUE = chunk_queue


def _serial_engine(db: "GraphDatabase", name: str, exact_estimates: bool):
    """Instantiate a serial engine by name (lazy import: this module is
    reachable from ``repro.engines`` and must not import it eagerly)."""
    from repro.engines.auto import AutoEngine
    from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine

    classes = {
        RingKnnEngine.name: RingKnnEngine,
        RingKnnSEngine.name: RingKnnSEngine,
        AutoEngine.name: AutoEngine,
    }
    return classes[name](db, exact_estimates=exact_estimates)


def _resolve_span(span: tuple[str, int, int]) -> tuple[int, ...]:
    """Read a candidate span out of the parent's scratch segment."""
    name, start, stop = span
    segment = _SCRATCH_SEGMENTS.get(name)
    if segment is None:
        # A new scratch segment supersedes any previous one; drop stale
        # attachments (the parent unlinked them when it grew).
        for old_name in sorted(_SCRATCH_SEGMENTS):
            _SCRATCH_SEGMENTS.pop(old_name).close()
        segment = shared_memory.SharedMemory(name=name)
        _SCRATCH_SEGMENTS[name] = segment
    view = np.frombuffer(
        segment.buf, dtype="<i8", count=stop - start, offset=start * 8
    )
    candidates = tuple(int(value) for value in view)
    del view
    return candidates


def _pack_solutions(
    solutions: list[dict[Var, int]], variables: Sequence[Var]
) -> tuple[tuple[str, ...], "np.ndarray"]:
    """Pack solutions as (variable names, int64 row matrix).

    Every LTJ solution binds every variable, but the *insertion order*
    of the binding dicts can differ per subtree under the adaptive
    orderings — packing against one fixed variable order is what makes
    the matrix well-defined. Dict equality is order-insensitive, so the
    parent's rebuilt dicts still compare equal to the serial engine's.
    """
    names = tuple(v.name for v in variables)
    packed = np.empty((len(solutions), len(names)), dtype="<i8")
    for row, solution in enumerate(solutions):
        for col, variable in enumerate(variables):
            packed[row, col] = solution[variable]
    return names, packed


def _emit(
    uid: int, names: tuple[str, ...], packed: "np.ndarray"
) -> tuple["np.ndarray | None", int]:
    """Return the packed matrix inline, or stream it in fixed chunks.

    Small results ride the pool's result pipe with the outcome; large
    ones go through the chunk queue in ``CHUNK_SOLUTIONS``-row pieces so
    no single pipe message carries an unbounded payload. Returns
    ``(inline payload, number of chunks streamed)``.
    """
    if _CHUNK_QUEUE is None or len(packed) <= CHUNK_SOLUTIONS:
        return packed, 0
    n_chunks = 0
    for start in range(0, len(packed), CHUNK_SOLUTIONS):
        chunk = np.ascontiguousarray(packed[start : start + CHUNK_SOLUTIONS])
        _CHUNK_QUEUE.put((uid, n_chunks, chunk))
        n_chunks += 1
    return None, n_chunks


def unpack_solutions(
    names: tuple[str, ...], packed: "np.ndarray | None"
) -> list[dict[Var, int]]:
    """Rebuild binding dicts from a packed solution matrix."""
    if packed is None or len(packed) == 0:
        return []
    variables = [Var(name) for name in names]
    return [dict(zip(variables, row)) for row in packed.tolist()]


# ----------------------------------------------------------------------
# intra-query sharding: one slice of the first variable's candidates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardTask:
    """One contiguous slice of the first variable's candidate list."""

    uid: int
    """Pool-unique id correlating streamed chunks with this task."""

    index: int
    query: ExtendedBGP
    engine: str
    """Serial engine (``ring-knn`` / ``ring-knn-s``) whose compile order
    and ordering strategy the shard replicates."""

    exact_estimates: bool
    variable: str
    span: tuple[str, int, int] | None
    """``(scratch segment, start, stop)`` locating this shard's
    candidates in shared memory; ``None`` for inline execution."""

    candidates: tuple[int, ...] | None
    """Inline candidate list (pool size 1 / tests); ``None`` when the
    candidates live in the scratch segment."""

    budget: float | None
    """Remaining wall-clock seconds of the query's timeout, if any."""

    limit: int | None
    traced: bool


@dataclass
class ShardOutcome:
    """What one shard sends back to the merging parent."""

    uid: int
    index: int
    var_names: tuple[str, ...]
    packed: "np.ndarray | None"
    """Inline ``(n, len(var_names))`` int64 solution matrix, or ``None``
    when the matrix was streamed through the chunk queue."""

    n_chunks: int
    solutions_found: int
    bindings: int
    attempts: int
    leap_calls: int
    timed_out: bool
    elapsed: float
    first_descent: tuple[str, ...]
    trace: dict[str, Any] | None


def run_shard(
    task: ShardTask, db: "GraphDatabase | None" = None
) -> ShardOutcome:
    """Run the depth >= 1 search for one candidate shard.

    ``db`` overrides the pool-global database for inline execution in
    the parent process (pool size 1, or tests).
    """
    database = db if db is not None else _WORKER_DB
    if database is None:
        raise RuntimeError("worker pool used before initialization")
    started = time.perf_counter()
    if task.candidates is not None:
        candidates = task.candidates
    elif task.span is not None:
        candidates = _resolve_span(task.span)
    else:
        raise RuntimeError("shard task carries neither span nor candidates")
    driver = _serial_engine(database, task.engine, task.exact_estimates)
    relations = driver.compile(task.query)
    trace = QueryTrace(engine=task.engine) if task.traced else None
    engine = LTJEngine(
        relations,
        ordering=driver._ordering(task.query),
        timeout=task.budget,
        limit=task.limit,
        trace=trace,
    )
    variable = Var(task.variable)
    if trace is not None:
        instrument_relations(trace, relations)
        pairs = wavelet_targets(trace, database, task.query)
        with attach_wavelets(pairs):
            with trace.phase("evaluate"):
                solutions = list(engine.run_prebound(variable, candidates))
    else:
        solutions = list(engine.run_prebound(variable, candidates))
    stats = engine.stats
    names, matrix = _pack_solutions(solutions, engine.variables)
    payload, n_chunks = (
        (matrix, 0) if db is not None else _emit(task.uid, names, matrix)
    )
    return ShardOutcome(
        uid=task.uid,
        index=task.index,
        var_names=names,
        packed=payload,
        n_chunks=n_chunks,
        solutions_found=stats.solutions,
        bindings=stats.bindings,
        attempts=stats.attempts,
        leap_calls=stats.leap_calls,
        timed_out=stats.timed_out,
        elapsed=time.perf_counter() - started,
        first_descent=tuple(v.name for v in stats.first_descent_order),
        trace=trace.to_dict() if trace is not None else None,
    )


# ----------------------------------------------------------------------
# inter-query batching: many whole (small) queries per round trip
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryTask:
    """One whole query multiplexed through the pool by the scheduler."""

    uid: int
    index: int
    query: ExtendedBGP
    engine: str
    exact_estimates: bool
    timeout: float | None
    limit: int | None


@dataclass(frozen=True)
class QueryBatchTask:
    """A group of small queries served in one worker round trip.

    Batching amortizes the per-dispatch pipe cost over many queries —
    the scheduler groups small-estimate queries so a worker round trip
    does milliseconds of pipe traffic for tens of queries of work.
    """

    tasks: tuple[QueryTask, ...]


@dataclass
class QueryOutcome:
    """Result of one whole-query task."""

    uid: int
    index: int
    engine: str
    var_names: tuple[str, ...]
    packed: "np.ndarray | None"
    n_chunks: int
    solutions_found: int
    bindings: int
    attempts: int
    leap_calls: int
    timed_out: bool
    elapsed: float


def run_query(
    task: QueryTask, db: "GraphDatabase | None" = None
) -> QueryOutcome:
    """Evaluate one whole query serially inside a worker.

    The LTJ engine opens and closes its own per-query wavelet memo per
    evaluation, so multiplexed queries never share memo state.
    """
    database = db if db is not None else _WORKER_DB
    if database is None:
        raise RuntimeError("worker pool used before initialization")
    driver = _serial_engine(database, task.engine, task.exact_estimates)
    result = driver.evaluate(
        task.query, timeout=task.timeout, limit=task.limit
    )
    stats = result.stats
    if result.solutions:
        variables = sorted(result.solutions[0], key=lambda v: v.name)
    else:
        variables = []
    names, matrix = _pack_solutions(result.solutions, variables)
    payload, n_chunks = (
        (matrix, 0) if db is not None else _emit(task.uid, names, matrix)
    )
    return QueryOutcome(
        uid=task.uid,
        index=task.index,
        engine=result.engine,
        var_names=names,
        packed=payload,
        n_chunks=n_chunks,
        solutions_found=stats.solutions,
        bindings=stats.bindings,
        attempts=stats.attempts,
        leap_calls=stats.leap_calls,
        timed_out=stats.timed_out,
        elapsed=stats.elapsed,
    )


def run_query_batch(
    batch: QueryBatchTask, db: "GraphDatabase | None" = None
) -> list[QueryOutcome]:
    """Serve one batch of whole queries in a single round trip."""
    return [run_query(task, db=db) for task in batch.tasks]
