"""Worker-side execution of domain shards and whole queries.

Everything in this module runs inside :mod:`multiprocessing` pool
workers (or inline in the parent, for pools of one). The pool
initializer installs the read-only :class:`GraphDatabase` — shared by
fork on platforms that support it, shipped once via the succinct
structures' cache-dropping ``__getstate__`` otherwise — in a module
global, so individual tasks reference the indexes by construction
instead of serializing them per task.

Task and outcome types are plain picklable dataclasses; solutions cross
the process boundary as ``{variable name: constant}`` dictionaries and
are rebound to :class:`~repro.query.model.Var` keys by the merging
parent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.ltj.engine import LTJEngine
from repro.obs.trace import (
    QueryTrace,
    attach_wavelets,
    instrument_relations,
    wavelet_targets,
)
from repro.parallel import forced
from repro.query.model import ExtendedBGP, Var

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engines.database import GraphDatabase

_WORKER_DB: "GraphDatabase | None" = None


def _init_worker(db: "GraphDatabase") -> None:
    """Pool initializer: install the shared database, detach recorders.

    Under fork the child inherits whatever recorder state the parent
    happened to have attached at pool-start time (op-counter hooks,
    per-query memos mid-evaluation); those belong to the parent's
    evaluation, so they are stripped before the worker serves tasks.
    """
    global _WORKER_DB
    forced.mark_worker_process()
    _reset_observability(db)
    _WORKER_DB = db


def _reset_observability(db: "GraphDatabase") -> None:
    """Detach op counters / memos inherited through fork."""
    trees = [db.ring.column(coord) for coord in "spo"]
    for knn_ring in db.knn_rings.values():
        trees.append(knn_ring.S)
        trees.append(knn_ring.Sprime)
    if db.distance_index is not None:
        trees.append(db.distance_index.D)
    for tree in trees:
        tree.ops = None
        tree._memo_users = 0
        tree._memo_rank = None
        tree._memo_next = None


def _serial_engine(db: "GraphDatabase", name: str, exact_estimates: bool):
    """Instantiate a serial engine by name (lazy import: this module is
    reachable from ``repro.engines`` and must not import it eagerly)."""
    from repro.engines.auto import AutoEngine
    from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine

    classes = {
        RingKnnEngine.name: RingKnnEngine,
        RingKnnSEngine.name: RingKnnSEngine,
        AutoEngine.name: AutoEngine,
    }
    return classes[name](db, exact_estimates=exact_estimates)


# ----------------------------------------------------------------------
# intra-query sharding: one slice of the first variable's candidates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardTask:
    """One contiguous slice of the first variable's candidate list."""

    index: int
    query: ExtendedBGP
    engine: str
    """Serial engine (``ring-knn`` / ``ring-knn-s``) whose compile order
    and ordering strategy the shard replicates."""

    exact_estimates: bool
    variable: str
    candidates: tuple[int, ...]
    budget: float | None
    """Remaining wall-clock seconds of the query's timeout, if any."""

    limit: int | None
    traced: bool


@dataclass
class ShardOutcome:
    """What one shard sends back to the merging parent."""

    index: int
    solutions: list[dict[str, int]]
    solutions_found: int
    bindings: int
    attempts: int
    leap_calls: int
    timed_out: bool
    elapsed: float
    first_descent: tuple[str, ...]
    trace: dict[str, Any] | None


def run_shard(
    task: ShardTask, db: "GraphDatabase | None" = None
) -> ShardOutcome:
    """Run the depth >= 1 search for one candidate shard.

    ``db`` overrides the pool-global database for inline execution in
    the parent process (pool size 1, or tests).
    """
    database = db if db is not None else _WORKER_DB
    if database is None:
        raise RuntimeError("worker pool used before initialization")
    started = time.perf_counter()
    driver = _serial_engine(database, task.engine, task.exact_estimates)
    relations = driver.compile(task.query)
    trace = QueryTrace(engine=task.engine) if task.traced else None
    engine = LTJEngine(
        relations,
        ordering=driver._ordering(task.query),
        timeout=task.budget,
        limit=task.limit,
        trace=trace,
    )
    variable = Var(task.variable)
    if trace is not None:
        instrument_relations(trace, relations)
        pairs = wavelet_targets(trace, database, task.query)
        with attach_wavelets(pairs):
            with trace.phase("evaluate"):
                solutions = list(engine.run_prebound(variable, task.candidates))
    else:
        solutions = list(engine.run_prebound(variable, task.candidates))
    stats = engine.stats
    return ShardOutcome(
        index=task.index,
        solutions=[
            {v.name: c for v, c in solution.items()} for solution in solutions
        ],
        solutions_found=stats.solutions,
        bindings=stats.bindings,
        attempts=stats.attempts,
        leap_calls=stats.leap_calls,
        timed_out=stats.timed_out,
        elapsed=time.perf_counter() - started,
        first_descent=tuple(v.name for v in stats.first_descent_order),
        trace=trace.to_dict() if trace is not None else None,
    )


# ----------------------------------------------------------------------
# inter-query batching: one whole (small) query per task
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryTask:
    """One whole query multiplexed through the pool by the scheduler."""

    index: int
    query: ExtendedBGP
    engine: str
    exact_estimates: bool
    timeout: float | None
    limit: int | None


@dataclass
class QueryOutcome:
    """Result of one whole-query task."""

    index: int
    engine: str
    solutions: list[dict[str, int]]
    solutions_found: int
    bindings: int
    attempts: int
    leap_calls: int
    timed_out: bool
    elapsed: float


def run_query(
    task: QueryTask, db: "GraphDatabase | None" = None
) -> QueryOutcome:
    """Evaluate one whole query serially inside a worker.

    The LTJ engine opens and closes its own per-query wavelet memo per
    evaluation, so multiplexed queries never share memo state.
    """
    database = db if db is not None else _WORKER_DB
    if database is None:
        raise RuntimeError("worker pool used before initialization")
    driver = _serial_engine(database, task.engine, task.exact_estimates)
    result = driver.evaluate(
        task.query, timeout=task.timeout, limit=task.limit
    )
    stats = result.stats
    return QueryOutcome(
        index=task.index,
        engine=result.engine,
        solutions=[
            {v.name: c for v, c in solution.items()}
            for solution in result.solutions
        ],
        solutions_found=stats.solutions,
        bindings=stats.bindings,
        attempts=stats.attempts,
        leap_calls=stats.leap_calls,
        timed_out=stats.timed_out,
        elapsed=stats.elapsed,
    )
