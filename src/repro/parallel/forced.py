"""Environment-driven forced parallel execution.

The CI parallel-smoke job runs the whole tier-1 suite with
``REPRO_PARALLEL_WORKERS=2``: every full-enumeration evaluation of the
Ring engines (untraced, untimed, unlimited, unprojected) is then
transparently domain-sharded across a worker pool,
and the suite must stay green because the sharded execution returns
byte-identical solutions and stats (see :mod:`repro.parallel.executor`).

This module is deliberately import-light (stdlib ``os`` only) so the
engines can consult it without creating an import cycle with the
executor machinery.
"""

from __future__ import annotations

import os

#: Environment variable forcing domain-sharded execution of the Ring
#: engines with the given pool size. Values below 2 (or non-integers)
#: are ignored — forcing a pool of one would only add overhead.
ENV_WORKERS = "REPRO_PARALLEL_WORKERS"

#: Environment variable pinning the pool start method (``fork`` or
#: ``spawn``). Unset or unrecognized values fall back to the platform
#: default (fork where available). The CI ``parallel-shm`` job forces
#: ``spawn`` to prove the shm transport works without copy-on-write
#: inheritance.
ENV_START_METHOD = "REPRO_PARALLEL_START_METHOD"

# Set inside pool workers: a worker must never recursively shard the
# queries it evaluates (daemonic processes cannot fork children).
_IN_WORKER = False


def mark_worker_process() -> None:
    """Disable forced sharding in this process (called by the pool
    initializer in every worker)."""
    global _IN_WORKER
    _IN_WORKER = True


def forced_workers() -> int:
    """Pool size forced via the environment, or 0 when not forced."""
    if _IN_WORKER:
        return 0
    raw = os.environ.get(ENV_WORKERS)
    if not raw:
        return 0
    try:
        workers = int(raw)
    except ValueError:
        return 0
    return workers if workers >= 2 else 0


def forced_start_method() -> str | None:
    """Start method forced via the environment, or ``None``."""
    raw = os.environ.get(ENV_START_METHOD, "").strip().lower()
    return raw if raw in ("fork", "spawn") else None
