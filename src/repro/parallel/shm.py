"""Shared-memory transport for the succinct indexes (zero-copy workers).

The worker pool used to ship the database by pickling it into every
child (or by relying on fork's copy-on-write). This module replaces
that transport: each succinct structure — :class:`BitVector`,
:class:`WaveletTree`, :class:`CumulativeCounts`, :class:`KnnRing`,
:class:`DistanceRangeIndex`, the :class:`RingIndex` and the whole
:class:`GraphDatabase` — *flattens* into a registry of contiguous
little-endian arrays packed into one
:class:`multiprocessing.shared_memory.SharedMemory` segment, plus a
tiny picklable :class:`ShmManifest` describing where each array lives.
Workers *attach*: they map the same segment and rebuild the structures
as zero-copy numpy views over it, dropping the plain-int hot-path
caches exactly as ``__getstate__`` does today — the caches are rebuilt
lazily by each structure's ``__getattr__`` on first touch, while the
canonical buffers are shared pages that cost no per-worker copy.

Layout: arrays are packed back to back at 8-byte-aligned offsets, each
recorded in the manifest as ``(offset, dtype, shape)`` with an explicit
little-endian dtype string (``<u8``/``<i8``/``<f8``), so a manifest is
valid regardless of the attaching interpreter's native byte order. The
structure tree itself is a nested ``dict`` of plain scalars and array
indices (``kind`` tags select the attach constructor).

Lifecycle: the *creator* (the parent process that owns the pool) is the
only party that ever ``unlink``\\ s a segment. Creation registers the
segment in a process-local registry (:func:`active_segments`), unlink
removes it — the shm-lifecycle leak tests assert the registry is empty
and ``/dev/shm`` is clean after an engine closes, after a worker raises
mid-shard, and after ``serve-batch`` finishes. Workers only ``close``
their attachment (and tolerate a late close while views are alive: the
OS unmaps everything at process exit anyway). POSIX resource-tracker
accounting stays balanced because registrations are a *set*: the
creator's register and any number of attach-side registrations collapse
to one entry, removed by the creator's single unlink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Sequence

import numpy as np

from repro.engines.database import GraphDatabase
from repro.knn.distance_index import DistanceRangeIndex
from repro.knn.succinct import KnnRing
from repro.ring.index import RingIndex
from repro.succinct.arrays import CumulativeCounts
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_tree import WaveletTree
from repro.utils.errors import StructureError

__all__ = [
    "ShmManifest",
    "StructureShm",
    "AttachedShm",
    "ScratchBuffer",
    "attach",
    "attach_buffer",
    "active_segments",
    "flatten_structure",
    "flatten_segment",
    "prime_hot_caches",
]


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


# ----------------------------------------------------------------------
# segment registry (leak-test introspection)
# ----------------------------------------------------------------------
# Every segment this process *created* and has not yet unlinked. The
# lifecycle tests assert this is empty after engines/pools close; the
# atexit pool shutdown drains it even on abnormal paths.
_CREATED: dict[str, "StructureShm | ScratchBuffer"] = {}


def active_segments() -> tuple[str, ...]:
    """Names of shared segments created here and not yet unlinked."""
    return tuple(sorted(_CREATED))


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShmManifest:
    """Picklable description of one flattened structure tree.

    ``entries[i]`` locates array ``i`` inside the segment as
    ``(byte offset, little-endian dtype string, shape)``; ``root`` is
    the nested structure meta whose leaves reference arrays by index.
    """

    segment: str
    entries: tuple[tuple[int, str, tuple[int, ...]], ...]
    root: dict[str, Any] = field(hash=False)

    @property
    def nbytes(self) -> int:
        total = 0
        for offset, dtype, shape in self.entries:
            count = 1
            for dim in shape:
                count *= dim
            total = max(total, offset + count * np.dtype(dtype).itemsize)
        return total


class _SegmentBuilder:
    """Collects arrays during flattening; writes them into one buffer.

    The buffer can be a shared-memory segment (:meth:`build`) or any
    writable byte sink (:meth:`write`) — the on-disk index store
    (:mod:`repro.store`) writes the identical layout into a file.
    """

    def __init__(self) -> None:
        self._pending: list[tuple[int, np.ndarray]] = []
        self._entries: list[tuple[int, str, tuple[int, ...]]] = []
        self._size = 0

    @property
    def size(self) -> int:
        """Total segment bytes registered so far."""
        return self._size

    @property
    def entries(self) -> tuple[tuple[int, str, tuple[int, ...]], ...]:
        return tuple(self._entries)

    def put(self, array: np.ndarray, dtype: str) -> int:
        """Register one canonical array; returns its manifest index."""
        arr = np.ascontiguousarray(np.asarray(array)).astype(dtype, copy=False)
        offset = _align8(self._size)
        self._entries.append((offset, dtype, tuple(arr.shape)))
        self._pending.append((offset, arr))
        self._size = offset + arr.nbytes
        return len(self._entries) - 1

    def write(self, buf: Any, base: int = 0) -> None:
        """Write every registered array into ``buf`` at its offset."""
        for offset, arr in self._pending:
            view = np.frombuffer(
                buf, dtype=arr.dtype, count=arr.size, offset=base + offset
            )
            view[:] = arr.reshape(-1)
            del view

    def build(self, root: dict[str, Any]) -> tuple[ShmManifest, shared_memory.SharedMemory]:
        shm = shared_memory.SharedMemory(create=True, size=max(self._size, 1))
        try:
            self.write(shm.buf)
            manifest = ShmManifest(
                segment=shm.name, entries=tuple(self._entries), root=root
            )
        except BaseException:
            # A failed flatten must not strand the OS segment: nobody
            # else holds its name yet, so close-and-unlink here is the
            # only release point (surfaced by RPL008).
            shm.close()
            shm.unlink()
            raise
        self._pending.clear()
        return manifest, shm


class _SegmentView:
    """Read-only numpy views over one attached buffer.

    ``buf`` is anything :func:`numpy.frombuffer` accepts — a shared
    segment's ``.buf`` or a whole memory-mapped index file, in which
    case ``base`` is the byte offset where the segment starts.
    """

    def __init__(
        self,
        entries: Sequence[tuple[int, str, tuple[int, ...]]],
        buf: Any,
        base: int = 0,
    ) -> None:
        self._entries = entries
        self._buf = buf
        self._base = base

    def get(self, index: int) -> np.ndarray:
        offset, dtype, shape = self._entries[index]
        count = 1
        for dim in shape:
            count *= dim
        arr = np.frombuffer(
            self._buf, dtype=dtype, count=count, offset=self._base + offset
        )
        if len(shape) != 1:  # frombuffer is already 1-D
            arr = arr.reshape(shape)
        arr.setflags(write=False)
        return arr


# ----------------------------------------------------------------------
# per-structure flatten / attach
# ----------------------------------------------------------------------
def _flatten_bitvector(bv: BitVector, b: _SegmentBuilder) -> dict[str, Any]:
    return {
        "kind": "bitvector",
        "n": bv._n,
        "words": b.put(bv._words, "<u8"),
        "cum1": b.put(bv._cum1, "<i8"),
        "cum0": b.put(bv._cum0, "<i8"),
    }


def _attach_bitvector(meta: dict[str, Any], view: _SegmentView) -> BitVector:
    bv = BitVector.__new__(BitVector)
    bv._n = int(meta["n"])
    bv._words = view.get(meta["words"])
    bv._cum1 = view.get(meta["cum1"])
    bv._cum0 = view.get(meta["cum0"])
    # The plain-int caches (_words_i/_cum1_i/_cum0_i) are deliberately
    # absent — __getattr__ rebuilds them lazily, as after unpickling.
    return bv


def _flatten_wavelet(wt: WaveletTree, b: _SegmentBuilder) -> dict[str, Any]:
    return {
        "kind": "wavelet",
        "n": wt._n,
        "sigma": wt._sigma,
        "height": wt._height,
        "levels": [_flatten_bitvector(bv, b) for bv in wt._levels],
        "counts": b.put(wt._counts, "<i8"),
    }


def _attach_wavelet(meta: dict[str, Any], view: _SegmentView) -> WaveletTree:
    wt = WaveletTree.__new__(WaveletTree)
    wt._n = int(meta["n"])
    wt._sigma = int(meta["sigma"])
    wt._height = int(meta["height"])
    wt._levels = [_attach_bitvector(m, view) for m in meta["levels"]]
    wt._counts = view.get(meta["counts"])
    # Evaluation-scoped recorder state never crosses the boundary.
    wt.ops = None
    wt._memo_users = 0
    wt._memo_rank = None
    wt._memo_next = None
    return wt


def _flatten_cumcounts(cc: CumulativeCounts, b: _SegmentBuilder) -> dict[str, Any]:
    return {
        "kind": "cumcounts",
        "n": cc._n,
        "sigma": cc._sigma,
        "cum": b.put(cc._cum, "<i8"),
    }


def _attach_cumcounts(meta: dict[str, Any], view: _SegmentView) -> CumulativeCounts:
    cc = CumulativeCounts.__new__(CumulativeCounts)
    cc._n = int(meta["n"])
    cc._sigma = int(meta["sigma"])
    cc._cum = view.get(meta["cum"])
    return cc


def _flatten_knn_ring(ring: KnnRing, b: _SegmentBuilder) -> dict[str, Any]:
    return {
        "kind": "knn_ring",
        "K": ring._K,
        "members": b.put(ring._members, "<i8"),
        "s_offsets": b.put(ring._s_offsets, "<i8"),
        "S": _flatten_wavelet(ring._S, b),
        "Sprime": _flatten_wavelet(ring._Sprime, b),
        "B": _flatten_bitvector(ring._B, b),
    }


def _attach_knn_ring(meta: dict[str, Any], view: _SegmentView) -> KnnRing:
    ring = KnnRing.__new__(KnnRing)
    ring._K = int(meta["K"])
    ring._members = view.get(meta["members"])
    ring._s_offsets = view.get(meta["s_offsets"])
    ring._S = _attach_wavelet(meta["S"], view)
    ring._Sprime = _attach_wavelet(meta["Sprime"], view)
    ring._B = _attach_bitvector(meta["B"], view)
    return ring


def _flatten_distance_index(
    index: DistanceRangeIndex, b: _SegmentBuilder
) -> dict[str, Any]:
    return {
        "kind": "distance_index",
        "d_max": index._d_max,
        "members": b.put(index._members, "<i8"),
        "distances": b.put(index._distances, "<f8"),
        "D": _flatten_wavelet(index._D, b),
        "B": _flatten_bitvector(index._B, b),
    }


def _attach_distance_index(
    meta: dict[str, Any], view: _SegmentView
) -> DistanceRangeIndex:
    index = DistanceRangeIndex.__new__(DistanceRangeIndex)
    index._d_max = float(meta["d_max"])
    index._members = view.get(meta["members"])
    index._distances = view.get(meta["distances"])
    index._D = _attach_wavelet(meta["D"], view)
    index._B = _attach_bitvector(meta["B"], view)
    return index


def _flatten_ring_index(ring: RingIndex, b: _SegmentBuilder) -> dict[str, Any]:
    return {
        "kind": "ring_index",
        "num_edges": ring._num_edges,
        "domain": ring._domain,
        "columns": {
            coord: _flatten_wavelet(ring._columns[coord], b) for coord in "spo"
        },
        "blocks": {
            coord: _flatten_cumcounts(ring._blocks[coord], b) for coord in "spo"
        },
    }


def _attach_ring_index(meta: dict[str, Any], view: _SegmentView) -> RingIndex:
    ring = RingIndex.__new__(RingIndex)
    ring._num_edges = int(meta["num_edges"])
    ring._domain = int(meta["domain"])
    ring._columns = {
        coord: _attach_wavelet(meta["columns"][coord], view) for coord in "spo"
    }
    ring._blocks = {
        coord: _attach_cumcounts(meta["blocks"][coord], view) for coord in "spo"
    }
    return ring


def _flatten_database(db: GraphDatabase, b: _SegmentBuilder) -> dict[str, Any]:
    return {
        "kind": "database",
        "ring": _flatten_ring_index(db.ring, b),
        "knn_rings": {
            name: _flatten_knn_ring(ring, b)
            for name, ring in sorted(db.knn_rings.items())
        },
        "distance_index": (
            None
            if db.distance_index is None
            else _flatten_distance_index(db.distance_index, b)
        ),
    }


def _attach_database(meta: dict[str, Any], view: _SegmentView) -> GraphDatabase:
    db = GraphDatabase.__new__(GraphDatabase)
    # The query path (validate_query, the Ring engines, the LTJ
    # relations) touches only the succinct structures below. The raw
    # graph/K-NN tables never travel to workers; engines that need them
    # (baseline, classic, materialize) are not worker-dispatched.
    db.graph = None  # type: ignore[assignment]
    db.knn_graphs = {}
    db._adjacency = {}
    db.ring = _attach_ring_index(meta["ring"], view)
    db.knn_rings = {
        name: _attach_knn_ring(m, view)
        for name, m in meta["knn_rings"].items()
    }
    db.distance_index = (
        None
        if meta["distance_index"] is None
        else _attach_distance_index(meta["distance_index"], view)
    )
    return db


_FLATTENERS: tuple[tuple[type, Any], ...] = (
    (GraphDatabase, _flatten_database),
    (RingIndex, _flatten_ring_index),
    (KnnRing, _flatten_knn_ring),
    (DistanceRangeIndex, _flatten_distance_index),
    (WaveletTree, _flatten_wavelet),
    (CumulativeCounts, _flatten_cumcounts),
    (BitVector, _flatten_bitvector),
)

_ATTACHERS = {
    "database": _attach_database,
    "ring_index": _attach_ring_index,
    "knn_ring": _attach_knn_ring,
    "distance_index": _attach_distance_index,
    "wavelet": _attach_wavelet,
    "cumcounts": _attach_cumcounts,
    "bitvector": _attach_bitvector,
}


def flatten_structure(structure: object, builder: _SegmentBuilder) -> dict[str, Any]:
    """Flatten any supported structure into ``builder``; returns meta."""
    for cls, flatten in _FLATTENERS:
        if isinstance(structure, cls):
            return flatten(structure, builder)
    raise StructureError(
        f"no shm flattener for {type(structure).__name__}"
    )


def flatten_segment(
    structure: object,
) -> tuple[dict[str, Any], tuple[tuple[int, str, tuple[int, ...]], ...], bytearray]:
    """Flatten ``structure`` into raw segment bytes.

    Returns ``(root meta, entries, payload)`` — the same layout
    :class:`StructureShm` writes into a shared segment, rendered into a
    plain byte buffer so it can be written to disk (:mod:`repro.store`).
    """
    builder = _SegmentBuilder()
    root = flatten_structure(structure, builder)
    payload = bytearray(max(builder.size, 1))
    builder.write(payload)
    return root, builder.entries, payload


def attach_buffer(
    root: dict[str, Any],
    entries: Sequence[tuple[int, str, tuple[int, ...]]],
    buf: Any,
    base: int = 0,
) -> Any:
    """Rebuild a flattened structure zero-copy over any buffer.

    ``buf`` may be a shared segment's ``.buf`` or a memory-mapped index
    file (``base`` locating the segment inside it). The caller owns the
    buffer's lifetime and must keep it alive while the structure is in
    use — numpy views into it are handed out, never copies.
    """
    return _ATTACHERS[root["kind"]](root, _SegmentView(entries, buf, base))


# ----------------------------------------------------------------------
# attach-boundary cache priming
# ----------------------------------------------------------------------
def prime_hot_caches(structure: object) -> None:
    """Materialize the plain-int hot-path caches of an attached tree.

    Attached structures drop the ``_*_i`` plain-int caches at flatten
    time and rebuild them lazily (``__getattr__`` → ``.tolist()``) on
    first touch. Every value in those caches is a plain Python ``int``
    — ``.tolist()`` is the coercion boundary, so numpy scalars never
    enter the hot path (asserted by the type-sweep test in
    ``tests/test_store.py`` and guarded statically by RPL001's
    canonical-array-subscript check). What lazy rebuild *does* cost is
    first-query latency: a worker's first evaluation pays the whole
    ``tolist`` of every structure it touches, mid-query. Calling this
    at the attach boundary (worker initializer, store warm-up) moves
    that cost into the explicit one-time warm-up instead.

    Idempotent, and a no-op on built (non-attached) structures whose
    caches already exist.
    """
    if isinstance(structure, GraphDatabase):
        prime_hot_caches(structure.ring)
        for ring in structure.knn_rings.values():
            prime_hot_caches(ring)
        if structure.distance_index is not None:
            prime_hot_caches(structure.distance_index)
    elif isinstance(structure, RingIndex):
        for coord in "spo":
            prime_hot_caches(structure._columns[coord])
            prime_hot_caches(structure._blocks[coord])
    elif isinstance(structure, KnnRing):
        structure._members_i
        structure._s_offsets_i
        prime_hot_caches(structure._S)
        prime_hot_caches(structure._Sprime)
        prime_hot_caches(structure._B)
    elif isinstance(structure, DistanceRangeIndex):
        structure._members_i
        structure._distances_i
        prime_hot_caches(structure._D)
        prime_hot_caches(structure._B)
    elif isinstance(structure, WaveletTree):
        structure._counts_i
        for level in structure._levels:
            prime_hot_caches(level)
    elif isinstance(structure, CumulativeCounts):
        structure._cum_i
    elif isinstance(structure, BitVector):
        structure._words_i
        structure._cum1_i
        structure._cum0_i
    else:
        raise StructureError(
            f"no hot caches to prime for {type(structure).__name__}"
        )


# ----------------------------------------------------------------------
# creator / attach handles
# ----------------------------------------------------------------------
class StructureShm:
    """Creator-side owner of one flattened structure's shared segment."""

    def __init__(self, manifest: ShmManifest, shm: shared_memory.SharedMemory) -> None:
        self.manifest = manifest
        self._shm: shared_memory.SharedMemory | None = shm
        _CREATED[manifest.segment] = self

    @classmethod
    def create(cls, structure: object) -> "StructureShm":
        """Flatten ``structure`` into a fresh shared segment."""
        builder = _SegmentBuilder()
        root = flatten_structure(structure, builder)
        manifest, shm = builder.build(root)
        return cls(manifest, shm)

    @property
    def name(self) -> str:
        return self.manifest.segment

    def close(self) -> None:
        """Close the creator's mapping and unlink the segment."""
        shm = self._shm
        self._shm = None
        if shm is not None:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        _CREATED.pop(self.manifest.segment, None)


class AttachedShm:
    """Attach-side handle: the rebuilt structure plus its mapping."""

    def __init__(self, manifest: ShmManifest) -> None:
        self._shm = shared_memory.SharedMemory(name=manifest.segment)
        self.structure = attach_buffer(
            manifest.root, manifest.entries, self._shm.buf
        )

    def close(self) -> None:
        """Drop the rebuilt structure and the mapping.

        Callers must not hold views into the segment past this call
        (the structure reference is dropped here so CPython refcounting
        frees the numpy views immediately). Never unlinks — the creator
        owns the segment's lifetime.
        """
        self.structure = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - caller kept views
            # The process exit unmaps regardless.
            pass


def attach(manifest: ShmManifest) -> AttachedShm:
    """Rebuild a flattened structure zero-copy over its shared segment."""
    return AttachedShm(manifest)


# ----------------------------------------------------------------------
# scratch buffer (shard-range candidate transport)
# ----------------------------------------------------------------------
class ScratchBuffer:
    """Reusable shared int64 buffer for first-variable candidate lists.

    ``evaluate_parallel`` publishes each query's candidate list here
    once; shard tasks then carry only ``(segment name, start, stop)``
    descriptors. Publications are strictly serialized with the shard
    maps that read them (the executor publishes, dispatches, and joins
    before the next publish), so overwriting from offset 0 is safe. The
    buffer grows geometrically and re-registers under a new name when
    it does; replaced segments are unlinked immediately (attached
    workers keep their mapping — POSIX keeps unlinked segments alive
    until the last map goes away — and never see the stale name again
    because tasks name the segment current at publish time).
    """

    def __init__(self) -> None:
        self._shm: shared_memory.SharedMemory | None = None
        self._capacity = 0

    @property
    def name(self) -> str | None:
        return None if self._shm is None else self._shm.name

    def publish(self, values: Sequence[int]) -> tuple[str, int]:
        """Write ``values``; returns ``(segment name, length)``."""
        n = len(values)
        if self._shm is None or self._capacity < n:
            self.close()
            self._capacity = max(2 * n, 4096)
            self._shm = shared_memory.SharedMemory(
                create=True, size=self._capacity * 8
            )
            _CREATED[self._shm.name] = self
        view = np.frombuffer(self._shm.buf, dtype="<i8", count=n)
        view[:] = np.asarray(values, dtype="<i8")
        del view
        return (self._shm.name, n)

    def close(self) -> None:
        shm = self._shm
        self._shm = None
        self._capacity = 0
        if shm is not None:
            name = shm.name
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _CREATED.pop(name, None)
