"""The Ring index (Arroyuelo et al., SIGMOD 2021; Sec. 2.4 of the paper).

The Ring stores a graph's triples as three wavelet-tree columns —
``C_S`` (subjects, rows of ``T_POS``), ``C_P`` (predicates, rows of
``T_OSP``), ``C_O`` (objects, rows of ``T_SPO``) — plus the cumulative
arrays ``A_S``, ``A_P``, ``A_O``. Because the coordinates form the cycle
``s -> p -> o -> s``, *every* subset of bound coordinates of a triple
pattern is a contiguous arc of the cycle and therefore corresponds to a
row range of one of the three tables; binding one more coordinate is a
single backward-search step, and ``leap`` is ``range_next_value`` on a
column (possibly through the select-and-locate trick for the coordinate
two hops ahead of the arc). This simulates all 3! = 6 trie orders LTJ
requires in ``3N log D (1 + o(1))`` bits.
"""

from repro.ring.index import RingIndex
from repro.ring.pattern import RingPatternState

__all__ = ["RingIndex", "RingPatternState"]
