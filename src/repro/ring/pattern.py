"""Per-triple-pattern navigation state over the Ring.

During LTJ every triple pattern tracks which of its coordinates are bound
(to query constants or to already-eliminated variables) and the row range
of the corresponding arc (Sec. 2.4: "each triple pattern of Q is
associated with some range C_j[b..e]"). :class:`RingPatternState`
maintains that state with a stack so the engine can backtrack, and
answers:

* ``leap(coord, lower)`` — smallest value ``>= lower`` the coordinate can
  take among the triples still matching the pattern;
* ``bind(coord, value)`` / ``unbind()`` — descend/ascend in the virtual
  trie;
* ``count()`` — number of matching triples (the range size, used both
  for emptiness tests and for the ``l_x`` ordering estimates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ring.index import NEXT_COORD, PREV_COORD, RingIndex
from repro.utils.errors import StructureError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import RelationCounters


@dataclass(frozen=True)
class _Frame:
    """One level of the virtual-trie descent.

    ``bound`` maps coordinate letters to values. For 1- and 2-arcs,
    ``arc_first``/``lo``/``hi`` describe the row range; for the empty
    binding they are ``None``/full; for a fully bound pattern ``matches``
    caches the number of matching triples.
    """

    bound: tuple[tuple[str, int], ...]
    arc_first: str | None
    lo: int
    hi: int
    matches: int


class RingPatternState:
    """Backtrackable binding state of one triple pattern over a Ring."""

    def __init__(self, ring: RingIndex, constants: dict[str, int]) -> None:
        """Start with the pattern's constants already bound.

        Args:
            ring: the index.
            constants: coordinate -> constant for the pattern's constant
                positions (e.g. ``{"p": 5}`` for ``(?x, 5, ?y)``).
        """
        self._ring = ring
        self.obs: RelationCounters | None = None
        """Optional :class:`repro.obs.trace.RelationCounters`; when set,
        each navigation primitive bumps a ``detail`` counter recording
        which Ring operation answered it (ranges opened per arc kind,
        leap dispatch)."""
        root = _Frame(
            bound=(), arc_first=None, lo=0, hi=ring.num_edges - 1,
            matches=ring.num_edges,
        )
        self._stack: list[_Frame] = [root]
        # Constants descend in a canonical order; correctness does not
        # depend on the order because every bound subset is an arc.
        for coord in "spo":
            if coord in constants:
                self.bind(coord, constants[coord])

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def frame(self) -> _Frame:
        return self._stack[-1]

    @property
    def bound_coords(self) -> frozenset[str]:
        return frozenset(coord for coord, _v in self.frame.bound)

    def count(self) -> int:
        """Number of triples matching the current partial binding."""
        return self.frame.matches

    def is_empty(self) -> bool:
        return self.frame.matches == 0

    def depth(self) -> int:
        """Number of bound coordinates."""
        return len(self.frame.bound)

    # ------------------------------------------------------------------
    # descent / ascent
    # ------------------------------------------------------------------
    def bind(self, coord: str, value: int) -> None:
        """Bind one coordinate and push the refined state."""
        frame = self.frame
        bound = dict(frame.bound)
        if coord in bound:
            raise StructureError(f"coordinate {coord!r} already bound")
        bound[coord] = value
        new_bound = tuple(sorted(bound.items()))
        ring = self._ring
        obs = self.obs
        if len(bound) == 1:
            if obs is not None:
                obs.bump("range_1arc")
            lo, hi = ring.block_range(coord, value)
            self._stack.append(
                _Frame(new_bound, coord, lo, hi, max(0, hi - lo + 1))
            )
            return
        if len(bound) == 2:
            if obs is not None:
                obs.bump("range_2arc")
            first = ring.arc_start(frozenset(bound))
            second = NEXT_COORD[first]
            lo, hi = ring.pair_range(first, bound[first], bound[second])
            self._stack.append(
                _Frame(new_bound, first, lo, hi, max(0, hi - lo + 1))
            )
            return
        if len(bound) == 3:
            if obs is not None:
                obs.bump("triple_count")
            if frame.arc_first is None:  # pragma: no cover - defensive
                raise StructureError("cannot bind third coord without a 2-arc")
            matches = ring.triple_count(
                frame.arc_first, frame.lo, frame.hi, value
            )
            self._stack.append(
                _Frame(new_bound, frame.arc_first, frame.lo, frame.hi, matches)
            )
            return
        raise StructureError("triple pattern has only three coordinates")

    def unbind(self) -> None:
        """Pop the most recent bind (backtracking)."""
        if len(self._stack) <= 1:
            raise StructureError("unbind on root state")
        self._stack.pop()

    # ------------------------------------------------------------------
    # leap
    # ------------------------------------------------------------------
    def leap(self, coord: str, lower: int) -> int | None:
        """Smallest value ``>= lower`` for an unbound ``coord``, or None.

        Dispatches to the Ring primitive matching the coordinate's
        position relative to the current arc (Sec. 2.4 / DESIGN.md).
        """
        frame = self.frame
        bound = dict(frame.bound)
        if coord in bound:
            raise StructureError(f"leap on bound coordinate {coord!r}")
        if frame.matches == 0:
            return None
        ring = self._ring
        obs = self.obs
        if not bound:
            if obs is not None:
                obs.bump("leap_unbound")
            return ring.leap_unbound(coord, lower)
        if len(bound) == 1:
            (f, value), = bound.items()
            if coord == PREV_COORD[f]:
                if obs is not None:
                    obs.bump("leap_stored")
                return ring.leap_stored(f, frame.lo, frame.hi, lower)
            if coord == NEXT_COORD[f]:
                if obs is not None:
                    obs.bump("leap_ahead")
                return ring.leap_ahead(f, value, lower)
            raise StructureError(  # pragma: no cover - cycle covers all
                f"coordinate {coord!r} unrelated to arc at {f!r}"
            )
        # Two bound coordinates: the free one is the arc's stored column.
        assert frame.arc_first is not None
        if coord != PREV_COORD[frame.arc_first]:  # pragma: no cover
            raise StructureError("free coordinate inconsistent with 2-arc")
        if obs is not None:
            obs.bump("leap_stored")
        return ring.leap_stored(frame.arc_first, frame.lo, frame.hi, lower)

    def probe(self, assignments: dict[str, int]) -> bool:
        """Check non-emptiness if the given coords were bound (no state
        change). Used for variables occupying several coordinates."""
        if self.obs is not None:
            self.obs.bump("probe")
        for coord, value in assignments.items():
            self.bind(coord, value)
        nonempty = not self.is_empty()
        for _ in assignments:
            self.unbind()
        return nonempty
