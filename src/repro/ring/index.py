"""The Ring index: columns, cumulative arrays, and navigation primitives.

Construction follows Sec. 2.4 verbatim: sort the edge table in SPO order
and keep the last column (``C_O``); rotate to OSP order and keep ``C_P``;
rotate to POS order and keep ``C_S``. Each column is a wavelet tree; each
``A_j`` a cumulative-count array.

Coordinate cycle and naming. With the cycle ``s -> p -> o -> s``:

* a *1-arc* ``{f}`` (one bound coordinate, value ``x``) is the block
  ``A_f.range_of(x)`` — a row range of the table sorted starting at
  ``f`` (``s``: ``T_SPO``, ``p``: ``T_POS``, ``o``: ``T_OSP``);
* a *2-arc* ``{f, next(f)}`` is obtained from the ``next(f)``-block by
  one backward-search step through column ``C_f``
  (:meth:`RingIndex.pair_range`);
* the stored column of the table starting at ``f`` is ``C_{prev(f)}``,
  i.e. a row range exposes the values of coordinate ``prev(f)`` directly.

All ranges are 0-based and closed; empty ranges satisfy ``lo > hi``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.triples import GraphData
from repro.succinct.arrays import CumulativeCounts
from repro.succinct.wavelet_tree import WaveletTree
from repro.utils.errors import StructureError

NEXT_COORD = {"s": "p", "p": "o", "o": "s"}
PREV_COORD = {"s": "o", "p": "s", "o": "p"}


class RingIndex:
    """Succinct triple index supporting LTJ over all six trie orders."""

    def __init__(self, graph: GraphData) -> None:
        self._num_edges = graph.num_edges
        self._domain = graph.domain_size
        sigma = max(self._domain, 1)
        spo = graph.spo
        # T_SPO is the graph's native order; C_O is its object column.
        c_o = spo[:, 2]
        # T_OSP: rotate object to the front, re-sort; C_P is its last column.
        osp_order = np.lexsort((spo[:, 1], spo[:, 0], spo[:, 2]))
        c_p = spo[osp_order, 1]
        # T_POS: rotate again; C_S is its last column.
        pos_order = np.lexsort((spo[:, 0], spo[:, 2], spo[:, 1]))
        c_s = spo[pos_order, 0]

        self._columns: dict[str, WaveletTree] = {
            "s": WaveletTree(c_s, sigma),
            "p": WaveletTree(c_p, sigma),
            "o": WaveletTree(c_o, sigma),
        }
        self._blocks: dict[str, CumulativeCounts] = {
            "s": CumulativeCounts(spo[:, 0], sigma),
            "p": CumulativeCounts(spo[:, 1], sigma),
            "o": CumulativeCounts(spo[:, 2], sigma),
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """``N``: number of indexed triples."""
        return self._num_edges

    @property
    def domain_size(self) -> int:
        """``D``: constants live in ``[0, D)``."""
        return self._domain

    def column(self, coord: str) -> WaveletTree:
        """The wavelet tree ``C_coord`` (symbols are ``coord`` values)."""
        return self._columns[coord]

    def blocks(self, coord: str) -> CumulativeCounts:
        """The cumulative array ``A_coord``."""
        return self._blocks[coord]

    def wavelet_trees(self) -> tuple[WaveletTree, ...]:
        """The three column trees (for per-query memo attachment)."""
        return tuple(self._columns.values())

    def size_in_bytes(self) -> int:
        return sum(wt.size_in_bytes() for wt in self._columns.values()) + sum(
            cc.size_in_bytes() for cc in self._blocks.values()
        )

    def _in_domain(self, value: int) -> bool:
        return 0 <= value < self._domain

    # ------------------------------------------------------------------
    # arc ranges (binding)
    # ------------------------------------------------------------------
    def block_range(self, coord: str, value: int) -> tuple[int, int]:
        """Row range of the 1-arc ``coord = value`` (possibly empty)."""
        if not self._in_domain(value):
            return (0, -1)
        return self._blocks[coord].range_of(value)

    def pair_range(
        self, first: str, first_value: int, second_value: int
    ) -> tuple[int, int]:
        """Row range of the 2-arc ``(first, next(first))``.

        One backward-search step (cf. the ``F_j`` maps of Sec. 2.4): the
        occurrences of ``first_value`` in column ``C_first`` inside the
        ``second_value``-block are counted with two ranks, and the result
        is re-based at ``A_first[first_value]``.
        """
        second = NEXT_COORD[first]
        if not (self._in_domain(first_value) and self._in_domain(second_value)):
            return (0, -1)
        blo, bhi = self._blocks[second].range_of(second_value)
        if blo > bhi:
            return (0, -1)
        col = self._columns[first]
        r0 = col.rank(first_value, blo)
        r1 = col.rank(first_value, bhi + 1)
        if r1 == r0:
            return (0, -1)
        base = self._blocks[first].before(first_value)
        return (base + r0, base + r1 - 1)

    @staticmethod
    def arc_start(bound_coords: frozenset[str] | set[str]) -> str:
        """First coordinate of the (unique) arc covering a bound set.

        For a single coordinate the arc starts there; for two, it starts
        at the one whose cyclic successor is the other.
        """
        coords = set(bound_coords)
        if len(coords) == 1:
            return next(iter(coords))
        if len(coords) == 2:
            for f in sorted(coords):
                if NEXT_COORD[f] in coords:
                    return f
        raise StructureError(f"no arc for bound set {sorted(coords)}")

    def triple_count(
        self, arc_first: str, lo: int, hi: int, remaining_value: int
    ) -> int:
        """Number of triples in a 2-arc range whose remaining coordinate
        (``prev(arc_first)``) equals ``remaining_value``."""
        if lo > hi or not self._in_domain(remaining_value):
            return 0
        return self._columns[PREV_COORD[arc_first]].rank_range(
            remaining_value, lo, hi
        )

    def contains(self, s: int, p: int, o: int) -> bool:
        """Whether the triple ``(s, p, o)`` is in the graph."""
        lo, hi = self.pair_range("s", s, p)
        return self.triple_count("s", lo, hi, o) > 0

    # ------------------------------------------------------------------
    # leap primitives
    # ------------------------------------------------------------------
    def leap_unbound(self, coord: str, lower: int) -> int | None:
        """Smallest value ``>= lower`` used at coordinate ``coord`` by any
        triple (leap for a pattern with no bound coordinate)."""
        return self._blocks[coord].next_nonempty(lower)

    def leap_stored(
        self, arc_first: str, lo: int, hi: int, lower: int
    ) -> int | None:
        """Leap on the coordinate ``prev(arc_first)``, which is the stored
        column of the arc's table: a single ``range_next_value``."""
        if lo > hi:
            return None
        return self._columns[PREV_COORD[arc_first]].range_next_value(
            lo, hi, lower
        )

    def leap_ahead(
        self, arc_first: str, arc_value: int, lower: int
    ) -> int | None:
        """Leap on the coordinate ``next(arc_first)`` of a 1-arc.

        The rows of the arc's table are, under the ``F`` maps, the
        occurrences of ``arc_value`` in column ``C_{arc_first}`` — whose
        positions fall into the blocks of ``A_{next(arc_first)}`` in
        nondecreasing block order. The smallest qualifying value ``>=
        lower`` is therefore found by jumping to the first occurrence of
        ``arc_value`` at or after the start of ``lower``'s block and
        locating that position's block.
        """
        nxt = NEXT_COORD[arc_first]
        if lower >= self._domain or not self._in_domain(arc_value):
            return None
        col = self._columns[arc_first]
        start = self._blocks[nxt].before(max(lower, 0))
        pos = col.select_next(arc_value, start)
        if pos is None:
            return None
        return self._blocks[nxt].block_of(pos)

    # ------------------------------------------------------------------
    # cardinalities
    # ------------------------------------------------------------------
    def block_count(self, coord: str, value: int) -> int:
        """Number of triples with ``coord = value``."""
        if not self._in_domain(value):
            return 0
        lo, hi = self._blocks[coord].range_of(value)
        return max(0, hi - lo + 1)

    def distinct_in_range(
        self, arc_first: str, lo: int, hi: int, cap: int | None = None
    ) -> int:
        """Distinct values of the stored coordinate within a range
        (the exact ``|t(x)|`` alternative to the range-size estimate)."""
        if lo > hi:
            return 0
        return self._columns[PREV_COORD[arc_first]].count_distinct(lo, hi, cap)
