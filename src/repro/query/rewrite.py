"""Query rewrites, including the Sec. 7 direction-free similarity.

The paper's discussion (Sec. 7) proposes letting the *system* choose the
direction of a similarity clause: "if the user does not specify the
direction of a similarity clause and the system can define it as
``x <|_k y`` or ``y <|_k x``, we can always make the query acyclic and
solve it in wco time. Query answers may differ slightly depending on
which order is chosen, so this approach can be seen as a way of
producing faster, approximate answers."

:func:`orient_clauses` implements that: given undirected similarity
pairs, it fixes a total order on the variables and orients every pair
from earlier to later — an orientation along a total order can never
create a directed cycle, so the resulting constraint graph is acyclic
and Thm. 2's topological strategy applies. The order can be supplied
(e.g. by selectivity) or defaults to first-appearance order.

:func:`symmetric_to_directed` applies the same idea to an existing query
whose symmetric operators were already expanded into 2-cycles: it keeps
one direction per cycle, turning an exact-but-restricted plan into the
approximate-but-acyclic one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.model import (
    DEFAULT_RELATION,
    ExtendedBGP,
    SimClause,
    Term,
    Var,
    is_var,
)
from repro.utils.errors import QueryError


@dataclass(frozen=True)
class UndirectedSim:
    """A similarity pair whose direction is left to the optimizer."""

    a: Term
    k: int
    b: Term
    relation: str = DEFAULT_RELATION

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise QueryError("similarity pair requires distinct endpoints")


def _position_order(
    query_vars: tuple[Var, ...], order: list[Var] | None
) -> dict[Var, int]:
    if order is None:
        order = list(query_vars)
    missing = [v for v in query_vars if v not in order]
    return {v: i for i, v in enumerate([*order, *missing])}


def orient_clauses(
    triples,
    pairs: list[UndirectedSim],
    order: list[Var] | None = None,
) -> ExtendedBGP:
    """Build an acyclic extended BGP from direction-free pairs.

    Args:
        triples: the query's triple patterns.
        pairs: undirected similarity pairs.
        order: optional variable priority (earlier = bound first); pairs
            are oriented from earlier to later, which guarantees an
            acyclic constraint graph.

    Returns:
        An :class:`ExtendedBGP` whose constraint graph is acyclic.
    """
    probe = ExtendedBGP(list(triples)) if triples else None
    query_vars: tuple[Var, ...] = probe.variables if probe else ()
    pair_vars = [
        v
        for p in pairs
        for v in (p.a, p.b)
        if is_var(v) and v not in query_vars
    ]
    positions = _position_order((*query_vars, *dict.fromkeys(pair_vars)), order)
    clauses: list[SimClause] = []
    for pair in pairs:
        a, b = pair.a, pair.b
        if is_var(a) and is_var(b):
            if positions[a] > positions[b]:
                a, b = b, a
        elif is_var(a) and not is_var(b):
            # Constant side first keeps the clause trivially acyclic and
            # bounds the variable by k.
            a, b = pair.b, pair.a
        clauses.append(SimClause(a, pair.k, b, pair.relation))
    return ExtendedBGP(list(triples), clauses)


def symmetric_to_directed(
    query: ExtendedBGP, order: list[Var] | None = None
) -> ExtendedBGP:
    """Replace every 2-cycle ``{x <|_k y, y <|_k x}`` by one direction.

    The kept direction follows the supplied (or first-appearance)
    variable order, so the result's constraint graph loses all 2-cycles
    created by symmetric operators. Other clauses are untouched. The
    rewritten query generally returns a *superset* of the symmetric
    query's answers (one of the two conditions is dropped) — the Sec. 7
    approximate semantics.
    """
    positions = _position_order(query.variables, order)
    kept: list[SimClause] = []
    dropped: set[SimClause] = set()
    clause_set = set(query.clauses)
    for clause in query.clauses:
        if clause in dropped:
            continue
        mirror = None
        if is_var(clause.x) and is_var(clause.y):
            mirror = SimClause(clause.y, clause.k, clause.x, clause.relation)
        if mirror is not None and mirror in clause_set and mirror != clause:
            x, y = clause.x, clause.y
            if positions[x] > positions[y]:
                x, y = y, x
            kept.append(SimClause(x, clause.k, y, clause.relation))
            dropped.add(mirror)
            dropped.add(clause)
        else:
            kept.append(clause)
    return ExtendedBGP(
        list(query.triples), kept, list(query.dist_clauses)
    )
