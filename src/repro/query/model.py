"""Data model for extended BGPs (Defs. 2 and 5 of the paper).

Variables are represented by :class:`Var` (hashable wrapper around a
name); constants are plain non-negative ints. A term is therefore
``Var | int``. A :class:`TriplePattern` is a triple of terms; a
:class:`SimClause` ``SimClause(x, k, y)`` encodes ``x <|_k y``, i.e.,
"the binding of ``y`` is among the ``k`` nearest neighbors of the
binding of ``x``".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.utils.errors import QueryError


@dataclass(frozen=True, order=True)
class Var:
    """A query variable, identified by name (without any ``?`` sigil)."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


Term = Union[Var, int]


def is_var(term: Term) -> bool:
    """Whether a term is a variable (as opposed to a constant)."""
    return isinstance(term, Var)


def _check_term(term: Term, where: str) -> Term:
    if isinstance(term, Var):
        return term
    if isinstance(term, bool) or not isinstance(term, int):
        raise QueryError(f"{where}: term must be Var or int, got {term!r}")
    if term < 0:
        raise QueryError(f"{where}: constants must be non-negative, got {term}")
    return term


@dataclass(frozen=True)
class TriplePattern:
    """A triple pattern ``(s, p, o)`` of variables and constants."""

    s: Term
    p: Term
    o: Term

    def __post_init__(self) -> None:
        for pos, term in zip("spo", (self.s, self.p, self.o)):
            _check_term(term, f"triple pattern position {pos}")

    @property
    def terms(self) -> tuple[Term, Term, Term]:
        return (self.s, self.p, self.o)

    @property
    def variables(self) -> tuple[Var, ...]:
        """Distinct variables of the pattern, in s, p, o order."""
        seen: list[Var] = []
        for term in self.terms:
            if isinstance(term, Var) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def coordinates_of(self, var: Var) -> tuple[str, ...]:
        """Which coordinates (``'s'``, ``'p'``, ``'o'``) hold ``var``."""
        return tuple(
            pos for pos, term in zip("spo", self.terms) if term == var
        )

    def substitute(self, assignment: dict[Var, int]) -> "TriplePattern":
        """Replace assigned variables by their constants."""

        def sub(term: Term) -> Term:
            if isinstance(term, Var):
                return assignment.get(term, term)
            return term

        return TriplePattern(sub(self.s), sub(self.p), sub(self.o))

    def __repr__(self) -> str:
        return f"({self.s!r}, {self.p!r}, {self.o!r})"


DEFAULT_RELATION = "default"
"""Name of the implicit K-NN relation used when none is specified."""


@dataclass(frozen=True)
class SimClause:
    """Similarity clause ``x <|_k y``: ``y`` is in ``k``-NN(``x``).

    Per Def. 5, ``x != y`` and ``k >= 1``. Either side may be a constant.
    ``relation`` names which K-NN graph the clause refers to — Sec. 3.1
    allows "various independent K-NN relations ... in the same queries";
    the default name targets the database's primary K-NN graph.
    """

    x: Term
    k: int
    y: Term
    relation: str = DEFAULT_RELATION

    def __post_init__(self) -> None:
        _check_term(self.x, "similarity clause x")
        _check_term(self.y, "similarity clause y")
        if isinstance(self.k, bool) or not isinstance(self.k, int) or self.k < 1:
            raise QueryError(f"similarity clause requires k >= 1, got {self.k!r}")
        if self.x == self.y:
            raise QueryError("similarity clause requires x != y (Def. 5)")
        if not self.relation or not isinstance(self.relation, str):
            raise QueryError("similarity clause relation must be a name")

    @property
    def variables(self) -> tuple[Var, ...]:
        out: list[Var] = []
        for term in (self.x, self.y):
            if isinstance(term, Var) and term not in out:
                out.append(term)
        return tuple(out)

    def __repr__(self) -> str:
        tag = "" if self.relation == DEFAULT_RELATION else f"[{self.relation}]"
        return f"{self.x!r} <|_{self.k}{tag} {self.y!r}"


@dataclass(frozen=True)
class DistClause:
    """Range-based similarity clause ``dist(x, y) <= d`` (Sec. 3.3).

    An extension over the core ``<|_k`` operator: both sides must be
    within distance ``d`` under the metric the
    :class:`~repro.knn.distance_index.DistanceRangeIndex` was built with.
    The predicate is symmetric.
    """

    x: Term
    d: float
    y: Term

    def __post_init__(self) -> None:
        _check_term(self.x, "distance clause x")
        _check_term(self.y, "distance clause y")
        if not isinstance(self.d, (int, float)) or self.d <= 0:
            raise QueryError(f"distance clause requires d > 0, got {self.d!r}")
        if self.x == self.y:
            raise QueryError("distance clause requires x != y")

    @property
    def variables(self) -> tuple[Var, ...]:
        out: list[Var] = []
        for term in (self.x, self.y):
            if isinstance(term, Var) and term not in out:
                out.append(term)
        return tuple(out)

    def __repr__(self) -> str:
        return f"dist({self.x!r}, {self.y!r}) <= {self.d}"


def sym_clauses(
    x: Term, k: int, y: Term, relation: str = DEFAULT_RELATION
) -> tuple[SimClause, SimClause]:
    """Expand the symmetric operator ``x ~_k y`` per Sec. 3.1.

    ``x ~_k y  <=>  x <|_k y  and  y <|_k x``.
    """
    return (SimClause(x, k, y, relation), SimClause(y, k, x, relation))


class ExtendedBGP:
    """An extended BGP: triple patterns plus similarity clauses (Def. 5)."""

    def __init__(
        self,
        triples: list[TriplePattern] | tuple[TriplePattern, ...] = (),
        clauses: list[SimClause] | tuple[SimClause, ...] = (),
        dist_clauses: list[DistClause] | tuple[DistClause, ...] = (),
    ) -> None:
        self.triples: tuple[TriplePattern, ...] = tuple(triples)
        self.clauses: tuple[SimClause, ...] = tuple(clauses)
        self.dist_clauses: tuple[DistClause, ...] = tuple(dist_clauses)
        if not self.triples and not self.clauses and not self.dist_clauses:
            raise QueryError("query must contain at least one atom")
        for t in self.triples:
            if not isinstance(t, TriplePattern):
                raise QueryError(f"not a TriplePattern: {t!r}")
        for c in self.clauses:
            if not isinstance(c, SimClause):
                raise QueryError(f"not a SimClause: {c!r}")
        for c in self.dist_clauses:
            if not isinstance(c, DistClause):
                raise QueryError(f"not a DistClause: {c!r}")

    # ------------------------------------------------------------------
    # structural queries used by orderings, bounds, and engines
    # ------------------------------------------------------------------
    @property
    def variables(self) -> tuple[Var, ...]:
        """All distinct variables, triples first, in first-seen order."""
        seen: list[Var] = []
        for atom in (*self.triples, *self.clauses):
            for v in atom.variables:
                if v not in seen:
                    seen.append(v)
        return tuple(seen)

    @property
    def atoms(self) -> tuple[object, ...]:
        """Triple patterns, similarity clauses, then distance clauses."""
        return (*self.triples, *self.clauses, *self.dist_clauses)

    def atom_count(self, var: Var) -> int:
        """Number of atoms (triples or clauses) mentioning ``var``."""
        return sum(1 for atom in self.atoms if var in atom.variables)

    def lonely_variables(self) -> tuple[Var, ...]:
        """Variables appearing in exactly one atom (Sec. 5: bound last)."""
        return tuple(v for v in self.variables if self.atom_count(v) == 1)

    def triple_count(self, var: Var) -> int:
        """Number of *triple patterns* mentioning ``var``."""
        return sum(1 for t in self.triples if var in t.variables)

    def is_safe(self) -> bool:
        """Safety per Sec. 4.1: every clause's ``x`` occurs in a triple.

        Constant ``x`` sides are trivially safe.
        """
        for clause in self.clauses:
            if isinstance(clause.x, Var) and self.triple_count(clause.x) == 0:
                return False
        return True

    def max_k(self) -> int:
        """Largest ``k`` used by any clause (0 if no clauses)."""
        return max((c.k for c in self.clauses), default=0)

    def substitute(self, assignment: dict[Var, int]) -> "ExtendedBGP":
        """Apply a partial assignment to all triple patterns.

        Similarity clauses are kept symbolic (engines track their bound
        sides separately); only used by analysis code.
        """
        return ExtendedBGP(
            [t.substitute(assignment) for t in self.triples],
            list(self.clauses),
            list(self.dist_clauses),
        )

    def __repr__(self) -> str:
        parts = [repr(a) for a in self.atoms]
        return "ExtendedBGP{" + " . ".join(parts) + "}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtendedBGP):
            return NotImplemented
        return (
            self.triples == other.triples
            and self.clauses == other.clauses
            and self.dist_clauses == other.dist_clauses
        )

    def __hash__(self) -> int:
        return hash((self.triples, self.clauses, self.dist_clauses))
