"""Textual syntax for extended BGPs.

The grammar is a small SPARQL-flavoured dot-separated atom list::

    query  := atom ("." atom)*
    atom   := triple | knn | sim | dist
    triple := "(" term "," term "," term ")"
    knn    := "knn" rel? "(" term "," term "," int ")"    # x <|_k y
    sim    := "sim" rel? "(" term "," term "," int ")"    # x ~_k y (2 clauses)
    dist   := "dist(" term "," term "," float ")"         # dist(x, y) <= d
    rel    := ":" name                             # named K-NN relation
    term   := "?" name | int | name                # bare names need a dictionary

Examples::

    (?x, 5, ?y) . (?y, 5, ?z) . sim(?y, ?z, 2)
    (?e, depicts, ?img) . knn(?img, ?other, 10)

Bare (non-numeric, non-``?``) terms are resolved through an optional
:class:`~repro.graph.dictionary.TermDictionary`.
"""

from __future__ import annotations

import re

from repro.graph.dictionary import TermDictionary
from repro.query.model import (
    DEFAULT_RELATION,
    DistClause,
    ExtendedBGP,
    SimClause,
    Term,
    TriplePattern,
    Var,
    sym_clauses,
)
from repro.utils.errors import QueryError

_TRIPLE_RE = re.compile(r"^\(\s*([^,()]+?)\s*,\s*([^,()]+?)\s*,\s*([^,()]+?)\s*\)$")
_FUNC_RE = re.compile(
    r"^(knn|sim|dist)(?::([A-Za-z_][\w-]*))?"
    r"\(\s*([^,()]+?)\s*,\s*([^,()]+?)\s*,\s*([0-9.]+)\s*\)$"
)


def _split_atoms(text: str) -> list[str]:
    """Split on dots that are not inside parentheses."""
    atoms: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise QueryError("unbalanced ')' in query text")
        if ch == "." and depth == 0:
            atoms.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise QueryError("unbalanced '(' in query text")
    tail = "".join(current).strip()
    if tail:
        atoms.append(tail)
    return [a for a in atoms if a]


def _parse_term(token: str, dictionary: TermDictionary | None) -> Term:
    token = token.strip()
    if not token:
        raise QueryError("empty term")
    if token.startswith("?"):
        name = token[1:]
        if not name:
            raise QueryError("variable must have a name after '?'")
        return Var(name)
    if re.fullmatch(r"\d+", token):
        return int(token)
    if dictionary is None:
        raise QueryError(
            f"term {token!r} is not numeric and no dictionary was provided"
        )
    if token not in dictionary:
        raise QueryError(f"unknown term {token!r} (not in dictionary)")
    return dictionary.id_of(token)


def parse_query(
    text: str, dictionary: TermDictionary | None = None
) -> ExtendedBGP:
    """Parse the textual syntax into an :class:`ExtendedBGP`.

    Args:
        text: the query string (see module docstring for the grammar).
        dictionary: optional term dictionary for bare (named) constants.

    Raises:
        QueryError: on any syntactic or resolution problem.
    """
    triples: list[TriplePattern] = []
    clauses: list[SimClause] = []
    dist_clauses: list[DistClause] = []
    for atom_text in _split_atoms(text):
        func_match = _FUNC_RE.match(atom_text)
        if func_match:
            kind, relation, x_tok, y_tok, k_tok = func_match.groups()
            x = _parse_term(x_tok, dictionary)
            y = _parse_term(y_tok, dictionary)
            if kind == "dist":
                if relation is not None:
                    raise QueryError(
                        "dist clauses take no relation name (one "
                        "distance index per database)"
                    )
                dist_clauses.append(DistClause(x, float(k_tok), y))
                continue
            if "." in k_tok:
                raise QueryError(f"{kind} requires an integer k, got {k_tok!r}")
            k = int(k_tok)
            relation = relation or DEFAULT_RELATION
            if kind == "knn":
                clauses.append(SimClause(x, k, y, relation))
            else:
                clauses.extend(sym_clauses(x, k, y, relation))
            continue
        triple_match = _TRIPLE_RE.match(atom_text)
        if triple_match:
            s, p, o = (
                _parse_term(tok, dictionary) for tok in triple_match.groups()
            )
            triples.append(TriplePattern(s, p, o))
            continue
        raise QueryError(f"cannot parse atom: {atom_text!r}")
    return ExtendedBGP(triples, clauses, dist_clauses)
