"""Extended basic graph patterns (Def. 5 of the paper).

An :class:`ExtendedBGP` is a set of triple patterns over constants and
variables plus zero or more similarity clauses ``x <|_k y`` ("y is among
the k nearest neighbors of x"). The symmetric operator ``x ~_k y`` is
sugar for the conjunction of both directions and is expanded at
construction time, exactly as in Sec. 3.1.
"""

from repro.query.model import (
    DistClause,
    ExtendedBGP,
    SimClause,
    TriplePattern,
    Var,
    is_var,
    sym_clauses,
)
from repro.query.parser import parse_query
from repro.query.rewrite import UndirectedSim, orient_clauses, symmetric_to_directed

__all__ = [
    "Var",
    "is_var",
    "TriplePattern",
    "SimClause",
    "DistClause",
    "sym_clauses",
    "ExtendedBGP",
    "parse_query",
    "UndirectedSim",
    "orient_clauses",
    "symmetric_to_directed",
]
