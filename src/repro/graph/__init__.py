"""Graph database substrate: triples, dictionaries, reference evaluators.

A graph database here follows Def. 1 of the paper: a set of labeled edges
``(s, p, o)`` over a universe of integer constants ``[0, D)``. The modules:

* :mod:`repro.graph.triples` — the :class:`GraphData` container with the
  derived quantities the paper uses (``N`` edges, ``D`` domain size,
  ``n`` nodes).
* :mod:`repro.graph.dictionary` — optional string<->id mapping so examples
  can use readable terms.
* :mod:`repro.graph.naive` — brute-force BGP evaluation, the correctness
  oracle for every join engine in the repo.
* :mod:`repro.graph.sixperm` — the classic six-permutation sorted index
  (the "6 tries" of Sec. 2.2), used both as an LTJ backend and as a
  navigation oracle for the Ring.
"""

from repro.graph.dictionary import TermDictionary
from repro.graph.triples import GraphData, Triple

__all__ = ["GraphData", "Triple", "TermDictionary"]
