"""Graph database container (Def. 1 of the paper).

A :class:`GraphData` holds the edge set ``E`` of a labeled graph
``G(V, E)`` as a deduplicated, SPO-sorted ``(N, 3)`` integer array. It
exposes the quantities the paper reasons with:

* ``num_edges`` — ``N = |E|``;
* ``domain_size`` — ``D = |dom(G)|`` (here: 1 + the largest constant used,
  so constants form the universe ``[0, D)``);
* ``nodes`` — the set ``V`` of subjects and objects.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.utils.errors import ValidationError

Triple = tuple[int, int, int]


class GraphData:
    """Immutable set of labeled edges over integer constants.

    Triples are deduplicated and kept sorted in SPO order, which is also
    the order the Ring's construction starts from.
    """

    def __init__(self, triples: Iterable[Triple] | np.ndarray) -> None:
        if isinstance(triples, np.ndarray):
            arr = np.asarray(triples, dtype=np.int64)
        else:
            listed = list(triples)
            arr = (
                np.asarray(listed, dtype=np.int64)
                if listed
                else np.empty((0, 3), dtype=np.int64)
            )
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ValidationError("triples must be an iterable of (s, p, o)")
        if arr.size and arr.min() < 0:
            raise ValidationError("constants must be non-negative integers")
        # Deduplicate and sort in SPO order.
        if arr.shape[0]:
            arr = np.unique(arr, axis=0)
            order = np.lexsort((arr[:, 2], arr[:, 1], arr[:, 0]))
            arr = arr[order]
        self._spo = arr
        self._spo.setflags(write=False)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._spo.shape[0])

    def __iter__(self) -> Iterator[Triple]:
        for s, p, o in self._spo:
            yield (int(s), int(p), int(o))

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple
        return self._row_index(s, p, o) is not None

    def _row_index(self, s: int, p: int, o: int) -> int | None:
        """Binary-search the SPO-sorted table for a triple."""
        lo, hi = 0, self._spo.shape[0]
        target = (s, p, o)
        while lo < hi:
            mid = (lo + hi) // 2
            row = tuple(int(v) for v in self._spo[mid])
            if row < target:
                lo = mid + 1
            else:
                hi = mid
        if lo < self._spo.shape[0]:
            row = tuple(int(v) for v in self._spo[lo])
            if row == target:
                return lo
        return None

    @property
    def spo(self) -> np.ndarray:
        """The SPO-sorted ``(N, 3)`` edge table (read-only view)."""
        return self._spo

    @property
    def num_edges(self) -> int:
        """``N``: the number of edges."""
        return int(self._spo.shape[0])

    @property
    def domain_size(self) -> int:
        """``D``: constants live in ``[0, D)`` (0 for an empty graph)."""
        if not self._spo.shape[0]:
            return 0
        return int(self._spo.max()) + 1

    @property
    def nodes(self) -> np.ndarray:
        """``V``: sorted array of constants used as subject or object."""
        if not self._spo.shape[0]:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate((self._spo[:, 0], self._spo[:, 2])))

    @property
    def predicates(self) -> np.ndarray:
        """Sorted array of constants used as predicate."""
        if not self._spo.shape[0]:
            return np.empty(0, dtype=np.int64)
        return np.unique(self._spo[:, 1])

    @property
    def num_nodes(self) -> int:
        """``n = |V|``."""
        return int(self.nodes.size)

    def size_in_bytes(self) -> int:
        """Bytes of the plain edge table (the "raw data" reference size)."""
        return int(self._spo.nbytes)

    # ------------------------------------------------------------------
    # convenience constructors / combinators
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls, subjects: np.ndarray, predicates: np.ndarray, objects: np.ndarray
    ) -> "GraphData":
        """Build from three parallel 1-D arrays."""
        stacked = np.stack(
            [
                np.asarray(subjects, dtype=np.int64),
                np.asarray(predicates, dtype=np.int64),
                np.asarray(objects, dtype=np.int64),
            ],
            axis=1,
        )
        return cls(stacked)

    def union(self, other: "GraphData") -> "GraphData":
        """Graph with the edges of both inputs (used by materialization)."""
        return GraphData(np.concatenate((self._spo, other._spo), axis=0))

    def matching(
        self, s: int | None, p: int | None, o: int | None
    ) -> np.ndarray:
        """All triples matching a pattern with optional constants.

        ``None`` positions are wildcards. Returns an ``(m, 3)`` array.
        A linear scan — only meant for tests and the naive evaluator.
        """
        mask = np.ones(self._spo.shape[0], dtype=bool)
        if s is not None:
            mask &= self._spo[:, 0] == s
        if p is not None:
            mask &= self._spo[:, 1] == p
        if o is not None:
            mask &= self._spo[:, 2] == o
        return self._spo[mask]
