"""Brute-force evaluation of extended BGPs — the correctness oracle.

Evaluates Def. 5 semantics directly: enumerate assignments by scanning
the edge table per triple pattern, then filter by every similarity and
distance clause. Exponential in general and only suitable for the small
instances used in tests, which is exactly its job.
"""

from __future__ import annotations

from repro.graph.triples import GraphData
from repro.knn.graph import KnnGraph
from repro.query.model import ExtendedBGP, Var, is_var


def _candidate_rows(graph: GraphData, pattern, assignment: dict[Var, int]):
    """Rows of the edge table matching a (partially assigned) pattern."""
    def resolve(term):
        if is_var(term):
            return assignment.get(term)
        return term

    return graph.matching(
        resolve(pattern.s), resolve(pattern.p), resolve(pattern.o)
    )


def _pattern_consistent(pattern, row, assignment: dict[Var, int]) -> dict[Var, int] | None:
    """Extend ``assignment`` so the pattern matches ``row``, or None."""
    extended = dict(assignment)
    for term, value in zip(pattern.terms, row):
        value = int(value)
        if is_var(term):
            bound = extended.get(term)
            if bound is None:
                extended[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extended


def evaluate_naive(
    query: ExtendedBGP,
    graph: GraphData,
    knn: KnnGraph | None = None,
    distances: dict[tuple[int, int], float] | None = None,
) -> list[dict[Var, int]]:
    """All solutions of ``query`` over ``graph`` (and K-NN graph), by
    exhaustive search.

    Args:
        query: the extended BGP.
        graph: the database graph.
        knn: the K-NN graph, required if the query has ``<|_k`` clauses.
        distances: symmetric pairwise distances, required for
            ``dist(x, y) <= d`` clauses; missing pairs count as "too far".

    Returns:
        De-duplicated assignments over all query variables.
    """
    solutions: list[dict[Var, int]] = []

    def clause_domain(assignment: dict[Var, int]) -> list[Var]:
        """Variables occurring only in clauses, still unassigned."""
        out = []
        for atom in (*query.clauses, *query.dist_clauses):
            for v in atom.variables:
                if v not in assignment and v not in out:
                    out.append(v)
        return out

    def check_clauses(assignment: dict[Var, int]) -> bool:
        for clause in query.clauses:
            if knn is None:
                raise ValueError("query has k-NN clauses but no KnnGraph given")
            x = assignment[clause.x] if is_var(clause.x) else clause.x
            y = assignment[clause.y] if is_var(clause.y) else clause.y
            if not knn.is_knn(x, y, clause.k):
                return False
        for clause in query.dist_clauses:
            if distances is None:
                raise ValueError(
                    "query has distance clauses but no distances given"
                )
            x = assignment[clause.x] if is_var(clause.x) else clause.x
            y = assignment[clause.y] if is_var(clause.y) else clause.y
            d = distances.get((x, y), distances.get((y, x)))
            if d is None or d > clause.d:
                return False
        return True

    def recurse(pattern_index: int, assignment: dict[Var, int]) -> None:
        if pattern_index == len(query.triples):
            # Assign clause-only variables by brute force over the
            # relevant universes.
            free = clause_domain(assignment)
            if not free:
                if check_clauses(assignment):
                    solutions.append(dict(assignment))
                return
            var = free[0]
            universe: set[int] = set()
            if knn is not None:
                universe.update(int(m) for m in knn.members)
            if distances is not None:
                for a, b in distances:
                    universe.add(a)
                    universe.add(b)
            for value in sorted(universe):
                assignment[var] = value
                recurse(pattern_index, assignment)
                del assignment[var]
            return
        pattern = query.triples[pattern_index]
        for row in _candidate_rows(graph, pattern, assignment):
            extended = _pattern_consistent(pattern, row, assignment)
            if extended is not None:
                recurse(pattern_index + 1, extended)

    recurse(0, {})
    # De-duplicate (different derivations can yield the same assignment).
    unique: dict[tuple, dict[Var, int]] = {}
    for sol in solutions:
        key = tuple(sorted((v.name, c) for v, c in sol.items()))
        unique[key] = sol
    return list(unique.values())
