"""Bidirectional mapping between human-readable terms and integer ids.

The paper (and the Ring) works over a universe ``U = [1..D]`` of integer
constants; real datasets use IRIs and literals. :class:`TermDictionary`
provides the usual dictionary-encoding step so that examples and datasets
can be authored with strings while every engine operates on dense ids.
"""

from __future__ import annotations

from collections.abc import Iterable


class TermDictionary:
    """Dense, insertion-ordered string<->id dictionary (ids from 0)."""

    def __init__(self, terms: Iterable[str] = ()) -> None:
        self._term_to_id: dict[str, int] = {}
        self._id_to_term: list[str] = []
        for term in terms:
            self.add(term)

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def add(self, term: str) -> int:
        """Intern ``term``, returning its (possibly existing) id."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def id_of(self, term: str) -> int:
        """Id of an interned term; raises ``KeyError`` if unknown."""
        return self._term_to_id[term]

    def term_of(self, term_id: int) -> str:
        """Term for an id; raises ``IndexError`` if out of range."""
        if term_id < 0:
            raise IndexError(f"term id {term_id} is negative")
        return self._id_to_term[term_id]

    def encode_triples(
        self, triples: Iterable[tuple[str, str, str]]
    ) -> list[tuple[int, int, int]]:
        """Intern every term of string triples, returning id triples."""
        return [(self.add(s), self.add(p), self.add(o)) for s, p, o in triples]

    def decode_solution(self, solution: dict[str, int]) -> dict[str, str]:
        """Map a variable assignment from ids back to terms."""
        return {var: self.term_of(value) for var, value in solution.items()}
