"""Descriptive statistics of a graph database.

Used to sanity-check that generated benchmarks exhibit the structural
features the evaluation depends on (skewed degrees, predicate
long-tails), and surfaced by the CLI's ``stats`` subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.triples import GraphData


@dataclass(frozen=True)
class DegreeSummary:
    """Summary of a degree distribution."""

    count: int
    mean: float
    median: float
    maximum: int
    p90: float
    gini: float
    """Gini coefficient: 0 = uniform degrees, ->1 = extreme skew."""


def _summarize(values: np.ndarray) -> DegreeSummary:
    if values.size == 0:
        return DegreeSummary(0, 0.0, 0.0, 0, 0.0, 0.0)
    sorted_vals = np.sort(values).astype(np.float64)
    n = sorted_vals.size
    total = sorted_vals.sum()
    if total > 0:
        # Gini from the sorted-values formula.
        index = np.arange(1, n + 1)
        gini = float(
            (2 * (index * sorted_vals).sum() - (n + 1) * total) / (n * total)
        )
    else:
        gini = 0.0
    return DegreeSummary(
        count=int(n),
        mean=float(values.mean()),
        median=float(np.median(values)),
        maximum=int(values.max()),
        p90=float(np.percentile(values, 90)),
        gini=gini,
    )


@dataclass(frozen=True)
class GraphStats:
    """All per-graph statistics produced by :func:`compute_graph_stats`."""

    num_edges: int
    num_nodes: int
    num_predicates: int
    domain_size: int
    out_degree: DegreeSummary
    in_degree: DegreeSummary
    predicate_frequency: DegreeSummary
    top_predicates: tuple[tuple[int, int], ...]
    """The (predicate id, count) pairs of the most frequent predicates."""

    def rows(self) -> list[list[object]]:
        out = [
            ["edges (N)", self.num_edges],
            ["nodes (n)", self.num_nodes],
            ["predicates", self.num_predicates],
            ["domain size (D)", self.domain_size],
            ["out-degree mean / max / gini",
             f"{self.out_degree.mean:.2f} / {self.out_degree.maximum} / "
             f"{self.out_degree.gini:.2f}"],
            ["in-degree mean / max / gini",
             f"{self.in_degree.mean:.2f} / {self.in_degree.maximum} / "
             f"{self.in_degree.gini:.2f}"],
        ]
        for pred, count in self.top_predicates:
            out.append([f"predicate {pred}", f"{count} triples"])
        return out


STATS_HEADERS = ["statistic", "value"]


def compute_graph_stats(graph: GraphData, top: int = 5) -> GraphStats:
    """Compute degree and predicate statistics of a graph."""
    spo = graph.spo
    if graph.num_edges:
        out_deg = np.unique(spo[:, 0], return_counts=True)[1]
        in_deg = np.unique(spo[:, 2], return_counts=True)[1]
        preds, pred_counts = np.unique(spo[:, 1], return_counts=True)
        order = np.argsort(pred_counts)[::-1][:top]
        top_predicates = tuple(
            (int(preds[i]), int(pred_counts[i])) for i in order
        )
    else:
        out_deg = in_deg = pred_counts = np.empty(0, dtype=np.int64)
        top_predicates = ()
    return GraphStats(
        num_edges=graph.num_edges,
        num_nodes=graph.num_nodes,
        num_predicates=int(graph.predicates.size),
        domain_size=graph.domain_size,
        out_degree=_summarize(out_deg),
        in_degree=_summarize(in_deg),
        predicate_frequency=_summarize(pred_counts),
        top_predicates=top_predicates,
    )
