"""Persistence for graphs, dictionaries, and K-NN graphs.

Two formats:

* a line-based text format for authoring small graphs by hand —
  whitespace-separated ``subject predicate object`` terms per line, with
  ``#`` comments; terms are interned through a
  :class:`~repro.graph.dictionary.TermDictionary` unless they are all
  integers;
* a binary ``.npz`` bundle for benchmark-scale data: the edge table,
  the K-NN member/neighbor arrays, and optional descriptor points,
  round-tripping exactly.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.graph.dictionary import TermDictionary
from repro.graph.triples import GraphData
from repro.knn.graph import KnnGraph
from repro.utils.errors import ValidationError


# ----------------------------------------------------------------------
# text format
# ----------------------------------------------------------------------
def parse_triples_text(
    text: str, dictionary: TermDictionary | None = None
) -> tuple[GraphData, TermDictionary | None]:
    """Parse the line-based triple format.

    If every term in the file is an integer, terms are used as ids
    directly and the returned dictionary is ``None`` (unless one was
    passed in). Otherwise all terms are interned in ``dictionary``
    (created on demand).
    """
    rows: list[tuple[str, str, str]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ValidationError(
                f"line {line_no}: expected 3 terms, got {len(parts)}"
            )
        rows.append((parts[0], parts[1], parts[2]))
    all_numeric = all(
        term.isdigit() for row in rows for term in row
    )
    if all_numeric and dictionary is None:
        triples = [(int(s), int(p), int(o)) for s, p, o in rows]
        return GraphData(triples), None
    if dictionary is None:
        dictionary = TermDictionary()
    return GraphData(dictionary.encode_triples(rows)), dictionary


def load_triples_text(
    path: str | pathlib.Path, dictionary: TermDictionary | None = None
) -> tuple[GraphData, TermDictionary | None]:
    """Load the text format from a file."""
    return parse_triples_text(
        pathlib.Path(path).read_text(), dictionary
    )


def dump_triples_text(
    graph: GraphData, dictionary: TermDictionary | None = None
) -> str:
    """Serialize a graph to the text format (ids, or dictionary terms)."""
    lines = []
    for s, p, o in graph:
        if dictionary is not None:
            lines.append(
                f"{dictionary.term_of(s)} {dictionary.term_of(p)} "
                f"{dictionary.term_of(o)}"
            )
        else:
            lines.append(f"{s} {p} {o}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# binary bundles
# ----------------------------------------------------------------------
def save_bundle(
    path: str | pathlib.Path,
    graph: GraphData,
    knn_graph: KnnGraph | None = None,
    points: np.ndarray | None = None,
) -> None:
    """Save graph (+ optional K-NN graph and descriptors) as ``.npz``."""
    arrays: dict[str, np.ndarray] = {"spo": graph.spo}
    if knn_graph is not None:
        arrays["knn_members"] = knn_graph.members
        arrays["knn_neighbors"] = knn_graph.neighbor_table
    if points is not None:
        arrays["points"] = np.asarray(points, dtype=np.float64)
    np.savez_compressed(pathlib.Path(path), **arrays)


def load_bundle(
    path: str | pathlib.Path,
) -> tuple[GraphData, KnnGraph | None, np.ndarray | None]:
    """Load a ``.npz`` bundle written by :func:`save_bundle`."""
    with np.load(pathlib.Path(path)) as data:
        graph = GraphData(data["spo"])
        knn_graph = None
        if "knn_members" in data:
            knn_graph = KnnGraph(data["knn_members"], data["knn_neighbors"])
        points = data["points"] if "points" in data else None
    return graph, knn_graph, points
