"""The classic six-permutation index (the "6 tries" of Sec. 2.2).

Stores the edge table sorted under all ``3! = 6`` coordinate orders and
answers the same ``leap`` / ``bind`` / ``count`` questions as the Ring's
pattern state, by binary search over the appropriate permutation. It
costs six copies of the data — exactly the space overhead the Ring
eliminates — and serves two purposes here:

* a navigation *oracle* for property-testing the Ring, and
* the classic-LTJ backend for space/ablation comparisons.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from repro.graph.triples import GraphData
from repro.utils.errors import StructureError

_COORD_INDEX = {"s": 0, "p": 1, "o": 2}


class SixPermIndex:
    """Edge table under all six sort orders, with range navigation."""

    def __init__(self, graph: GraphData) -> None:
        spo = graph.spo
        self._num_edges = graph.num_edges
        self._tables: dict[tuple[str, ...], np.ndarray] = {}
        for perm in permutations("spo"):
            cols = [spo[:, _COORD_INDEX[c]] for c in perm]
            order = np.lexsort(tuple(reversed(cols)))
            self._tables[perm] = np.stack(
                [col[order] for col in cols], axis=1
            )

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def size_in_bytes(self) -> int:
        return sum(int(t.nbytes) for t in self._tables.values())

    def table(self, perm: tuple[str, ...]) -> np.ndarray:
        return self._tables[perm]

    # ------------------------------------------------------------------
    def _locate(self, bound: dict[str, int]) -> tuple[tuple[str, ...], int, int]:
        """Pick a permutation whose prefix covers ``bound`` and return the
        matching half-open row range."""
        for perm in self._tables:
            if set(perm[: len(bound)]) == set(bound):
                break
        else:  # pragma: no cover - all subsets are prefixes of some perm
            raise StructureError(f"no permutation covers {bound!r}")
        tab = self._tables[perm]
        lo, hi = 0, tab.shape[0]
        for level, coord in enumerate(perm[: len(bound)]):
            value = bound[coord]
            column = tab[lo:hi, level]
            lo, hi = (
                lo + int(np.searchsorted(column, value, side="left")),
                lo + int(np.searchsorted(column, value, side="right")),
            )
        return perm, lo, hi

    def count(self, bound: dict[str, int]) -> int:
        """Number of triples matching the bound coordinates."""
        _perm, lo, hi = self._locate(bound)
        return hi - lo

    def leap(self, bound: dict[str, int], coord: str, lower: int) -> int | None:
        """Smallest value ``>= lower`` at ``coord`` among matching triples.

        Uses a permutation whose prefix is the bound set followed by
        ``coord``, so candidate values are sorted within the range.
        """
        if coord in bound:
            raise StructureError(f"leap on bound coordinate {coord!r}")
        for perm in self._tables:
            if (
                set(perm[: len(bound)]) == set(bound)
                and perm[len(bound)] == coord
            ):
                break
        else:  # pragma: no cover
            raise StructureError(f"no permutation for {bound!r} + {coord!r}")
        tab = self._tables[perm]
        lo, hi = 0, tab.shape[0]
        for level, c in enumerate(perm[: len(bound)]):
            value = bound[c]
            column = tab[lo:hi, level]
            lo, hi = (
                lo + int(np.searchsorted(column, value, side="left")),
                lo + int(np.searchsorted(column, value, side="right")),
            )
        if lo >= hi:
            return None
        column = tab[lo:hi, len(bound)]
        idx = int(np.searchsorted(column, lower, side="left"))
        if idx >= column.size:
            return None
        return int(column[idx])
