"""Labeled vector datasets for the retrieval-quality experiment (Fig. 3).

The paper uses two UCI datasets as ground truth — Anuran Calls (7,195
MFCC vectors, dim 22, 10 unbalanced classes) and Dry Bean (13,611
vectors, dim 16, 7 unbalanced classes, features normalized to [0, 1]).
Neither is available offline, so :func:`make_anuran_like` and
:func:`make_drybean_like` generate Gaussian mixtures with the *same*
sizes, dimensions, class counts, and class-size profiles; the precision
comparison of kNN / reverse / intersection / union only depends on that
geometry (see DESIGN.md, substitution table).

A ``scale`` argument shrinks every class proportionally so tests and
benchmarks can run the same code path quickly.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError

# Published class sizes of the two UCI datasets.
ANURAN_CLASS_SIZES = (3478, 1121, 672, 542, 472, 310, 270, 148, 114, 68)
DRYBEAN_CLASS_SIZES = (3546, 2636, 2027, 1928, 1630, 1322, 522)


def make_gaussian_mixture(
    class_sizes: tuple[int, ...],
    dim: int,
    seed: int = 0,
    center_scale: float = 3.0,
    spread: float = 1.0,
    normalize: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a labeled Gaussian mixture.

    Args:
        class_sizes: points per class (classes labeled ``0..C-1``).
        dim: vector dimensionality.
        seed: RNG seed.
        center_scale: spread of the class centers.
        spread: within-class standard deviation.
        normalize: linearly rescale every feature into [0, 1] (the
            paper's Dry Bean preprocessing).

    Returns:
        ``(points, labels)`` with ``points`` of shape ``(sum(sizes), dim)``.
    """
    if not class_sizes or any(s <= 0 for s in class_sizes):
        raise ValidationError("class_sizes must be positive")
    if dim <= 0:
        raise ValidationError("dim must be positive")
    rng = np.random.default_rng(seed)
    centers = center_scale * rng.normal(size=(len(class_sizes), dim))
    parts = []
    labels = []
    for cls, size in enumerate(class_sizes):
        parts.append(centers[cls] + spread * rng.normal(size=(size, dim)))
        labels.append(np.full(size, cls, dtype=np.int64))
    points = np.concatenate(parts, axis=0)
    label_arr = np.concatenate(labels)
    # Shuffle so class blocks are interleaved, like the real datasets.
    order = rng.permutation(points.shape[0])
    points, label_arr = points[order], label_arr[order]
    if normalize:
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        points = (points - lo) / span
    return points, label_arr


def _scaled_sizes(sizes: tuple[int, ...], scale: float) -> tuple[int, ...]:
    if not 0 < scale <= 1:
        raise ValidationError(f"scale must be in (0, 1], got {scale}")
    return tuple(max(2, int(round(s * scale))) for s in sizes)


def make_anuran_like(
    seed: int = 0, scale: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """Anuran Calls analogue: 7,195 x 22, 10 unbalanced classes."""
    return make_gaussian_mixture(
        _scaled_sizes(ANURAN_CLASS_SIZES, scale),
        dim=22,
        seed=seed,
        # Tuned so Precision@k spans the paper's ~0.8-0.97 range for
        # the Anuran panel of Fig. 3 (classes overlap moderately).
        center_scale=1.2,
        spread=1.0,
    )


def make_drybean_like(
    seed: int = 0, scale: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """Dry Bean analogue: 13,611 x 16, 7 unbalanced classes, features
    normalized to [0, 1]."""
    return make_gaussian_mixture(
        _scaled_sizes(DRYBEAN_CLASS_SIZES, scale),
        dim=16,
        seed=seed,
        # Tuned to the Dry Bean panel's ~0.8-0.93 precision range.
        center_scale=1.1,
        spread=1.0,
        normalize=True,
    )
