"""Synthetic Wikidata + IMGpedia-like benchmark graph (Sec. 6.1 analogue).

The generator produces the structural features the paper's evaluation
depends on:

* a skewed entity-to-entity relation layer (Zipf-distributed predicates
  and preferential-attachment-style endpoints, like Wikidata's long-tail
  degree distributions);
* a designated set of *image* nodes, each depicted by one or more
  entities (IMGpedia links into Wikidata via ``depicts``-style edges);
* image attribute triples, so queries with lonely variables on images
  (the Q5 family) have matches;
* clustered visual descriptors per image, from which the exact K-NN
  graph is computed — clusters correlate with an image "class" so
  similarity joins are semantically non-trivial.

Identifier layout (dense ints): predicates first, then classes/literals,
then entities, then images — so images form a contiguous id range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph
from repro.knn.graph import KnnGraph
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class WikimediaConfig:
    """Knobs of the synthetic benchmark (defaults are test-friendly)."""

    n_entities: int = 400
    n_images: int = 150
    n_predicates: int = 8
    """Misc entity-to-entity predicates (besides depicts/type/attribute)."""

    n_classes: int = 8
    """Entity/image classes (objects of ``type`` triples)."""

    n_literals: int = 40
    """Attribute-value pool for image metadata triples."""

    n_misc_triples: int = 2500
    """Entity-to-entity edges."""

    K: int = 20
    """Construction-time K of the K-NN graph (paper: 50)."""

    descriptor_dim: int = 8
    n_clusters: int = 10
    cluster_spread: float = 0.25
    seed: int = 0


@dataclass
class WikimediaBenchmark:
    """Generated benchmark: graph, K-NN graph, and id bookkeeping."""

    config: WikimediaConfig
    graph: GraphData
    knn_graph: KnnGraph
    points: np.ndarray
    """Visual descriptors, parallel to ``image_ids``."""

    image_ids: np.ndarray
    entity_ids: np.ndarray
    class_ids: np.ndarray
    literal_ids: np.ndarray
    predicates: dict[str, int]
    """Named predicates: ``depicts``, ``type``, ``attr``, ``rel0..``."""

    image_class: dict[int, int] = field(default_factory=dict)
    """Image id -> class id (ground truth behind the descriptors)."""

    @property
    def depicts(self) -> int:
        return self.predicates["depicts"]

    @property
    def type_predicate(self) -> int:
        return self.predicates["type"]


def _zipf_choice(rng: np.random.Generator, n: int, size: int, a: float = 1.3):
    """Zipf-ish skewed choice over ``[0, n)`` without scipy machinery."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-a
    weights /= weights.sum()
    return rng.choice(n, size=size, p=weights)


def generate_benchmark(config: WikimediaConfig | None = None) -> WikimediaBenchmark:
    """Generate the synthetic benchmark deterministically from a seed."""
    cfg = config or WikimediaConfig()
    if cfg.n_images < cfg.K + 1:
        raise ValidationError(
            f"need n_images > K: got {cfg.n_images} <= {cfg.K}"
        )
    rng = np.random.default_rng(cfg.seed)

    # ------------------------------------------------------------------
    # id layout
    # ------------------------------------------------------------------
    named = ["depicts", "type", "attr"]
    predicates = {name: i for i, name in enumerate(named)}
    for j in range(cfg.n_predicates):
        predicates[f"rel{j}"] = len(named) + j
    n_pred_total = len(predicates)
    class_base = n_pred_total
    literal_base = class_base + cfg.n_classes
    entity_base = literal_base + cfg.n_literals
    image_base = entity_base + cfg.n_entities

    class_ids = np.arange(class_base, class_base + cfg.n_classes, dtype=np.int64)
    literal_ids = np.arange(
        literal_base, literal_base + cfg.n_literals, dtype=np.int64
    )
    entity_ids = np.arange(
        entity_base, entity_base + cfg.n_entities, dtype=np.int64
    )
    image_ids = np.arange(image_base, image_base + cfg.n_images, dtype=np.int64)

    triples: list[tuple[int, int, int]] = []

    # ------------------------------------------------------------------
    # descriptors and classes first: image class drives both the K-NN
    # structure and the type triples.
    # ------------------------------------------------------------------
    centers = rng.normal(size=(cfg.n_clusters, cfg.descriptor_dim))
    image_cluster = rng.integers(0, cfg.n_clusters, size=cfg.n_images)
    points = centers[image_cluster] + cfg.cluster_spread * rng.normal(
        size=(cfg.n_images, cfg.descriptor_dim)
    )
    image_class_arr = image_cluster % cfg.n_classes
    image_class = {
        int(img): int(class_ids[c])
        for img, c in zip(image_ids, image_class_arr)
    }

    # ------------------------------------------------------------------
    # depicts layer: every image is depicted by >= 1 entity.
    # ------------------------------------------------------------------
    for idx, img in enumerate(image_ids):
        n_depicting = 1 + int(rng.integers(0, 3))
        owners = _zipf_choice(rng, cfg.n_entities, n_depicting)
        for owner in owners:
            triples.append(
                (int(entity_ids[owner]), predicates["depicts"], int(img))
            )

    # type triples for entities and images.
    entity_class = rng.integers(0, cfg.n_classes, size=cfg.n_entities)
    for ent, cls in zip(entity_ids, entity_class):
        triples.append((int(ent), predicates["type"], int(class_ids[cls])))
    for img in image_ids:
        triples.append((int(img), predicates["type"], image_class[int(img)]))

    # image attribute triples (targets of Q5's lonely patterns).
    for img in image_ids:
        n_attrs = 1 + int(rng.integers(0, 3))
        values = rng.integers(0, cfg.n_literals, size=n_attrs)
        for value in values:
            triples.append(
                (int(img), predicates["attr"], int(literal_ids[value]))
            )

    # misc entity-to-entity edges with skewed predicates and endpoints.
    rel_ids = np.array(
        [predicates[f"rel{j}"] for j in range(cfg.n_predicates)], dtype=np.int64
    )
    if cfg.n_misc_triples:
        which_rel = _zipf_choice(rng, cfg.n_predicates, cfg.n_misc_triples)
        sources = _zipf_choice(rng, cfg.n_entities, cfg.n_misc_triples)
        targets = _zipf_choice(rng, cfg.n_entities, cfg.n_misc_triples)
        for r, s, o in zip(which_rel, sources, targets):
            triples.append(
                (int(entity_ids[s]), int(rel_ids[r]), int(entity_ids[o]))
            )

    graph = GraphData(triples)
    knn_graph = build_knn_graph(points, cfg.K, members=image_ids)
    return WikimediaBenchmark(
        config=cfg,
        graph=graph,
        knn_graph=knn_graph,
        points=points,
        image_ids=image_ids,
        entity_ids=entity_ids,
        class_ids=class_ids,
        literal_ids=literal_ids,
        predicates=predicates,
        image_class=image_class,
    )
