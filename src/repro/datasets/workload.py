"""The Q1-Q5 query families of Sec. 6.1, generated over the synthetic
benchmark with exactly the paper's construction rules.

The paper starts from 2,942 real Wikidata log queries that mention an
image variable and splices similarity clauses into them. Lacking the
log, we *mine* small non-empty BGPs around image nodes of the generated
graph (entity-depicts-image stars, optionally constrained by the
entity's type or one of its relations) and then apply the family rules:

* **Q1** : ``q_{x} . x <|_k y . q_{y}`` — two BGPs joined by one clause.
* **Q1b**: same with ``x ~_k y``.
* **Q2** : ``q_{x} . x <|_k y . q_{y} . y <|_k z . q_{z}`` — a chain.
* **Q2b**: the chain with symmetric clauses.
* **Q2t**: the chain closed into a triangle with ``z <|_k x`` (the paper
  omits its plot for being nearly identical to Q2; we keep it
  available).
* **Q3** : a query containing ``(x, p, y)`` with image ``y``, extended
  with ``(x, p, y') . y <|_k y'``.
* **Q4** : like Q3, but ``y'`` copies *all* triple patterns of ``y``
  (may produce empty answers).
* **Q5** : Q3 further extended with ``(y, l1, l2)`` where ``l1, l2`` are
  lonely variables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.wikimedia import WikimediaBenchmark
from repro.query.model import ExtendedBGP, SimClause, TriplePattern, Var, sym_clauses
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class WorkloadConfig:
    """How many queries per family, and the clause parameter ``k``.

    The paper uses k = 50 with family sizes 100/14/307/20/307; defaults
    here are scaled to the synthetic benchmark.
    """

    k: int = 10
    n_q1: int = 20
    n_q2: int = 8
    n_q3: int = 20
    n_q4: int = 10
    n_q5: int = 20
    seed: int = 1


def _image_star(
    bench: WikimediaBenchmark,
    rng: np.random.Generator,
    image_var: Var,
    prefix: str,
    with_type: bool = True,
) -> list[TriplePattern]:
    """A small non-empty BGP around an image variable.

    Mines a concrete image and a depicting entity, then emits
    ``(?e, depicts, ?img)`` with, optionally, the entity's type constant
    — guaranteed non-empty by construction. To diversify shapes the way
    the real query log does, the star sometimes grows a relational hop
    ``(?e, rel, ?f)`` mined from the entity's actual outgoing edges.
    """
    image = int(rng.choice(bench.image_ids))
    depicting = bench.graph.matching(None, bench.depicts, image)
    entity = int(depicting[rng.integers(0, len(depicting)), 0])
    entity_var = Var(f"{prefix}e")
    patterns = [TriplePattern(entity_var, bench.depicts, image_var)]
    if with_type:
        type_rows = bench.graph.matching(entity, bench.type_predicate, None)
        if len(type_rows):
            entity_type = int(type_rows[0, 2])
            patterns.append(
                TriplePattern(entity_var, bench.type_predicate, entity_type)
            )
    if rng.random() < 0.4:
        # Mine one real relational edge out of the entity so the star
        # grows a satisfiable hop (?e, rel, ?f).
        outgoing = bench.graph.matching(entity, None, None)
        relational = outgoing[
            (outgoing[:, 1] != bench.depicts)
            & (outgoing[:, 1] != bench.type_predicate)
            & (outgoing[:, 1] != bench.predicates["attr"])
        ]
        if len(relational):
            row = relational[rng.integers(0, len(relational))]
            # Mostly anchor the hop's object to the mined constant (like
            # log queries with fixed values); occasionally leave it as a
            # fresh variable, which fans out like Q5's lonely patterns.
            hop_object = (
                int(row[2]) if rng.random() < 0.7 else Var(f"{prefix}f")
            )
            patterns.append(
                TriplePattern(entity_var, int(row[1]), hop_object)
            )
    return patterns


def _q1(bench, rng, k, symmetric: bool) -> ExtendedBGP:
    x, y = Var("x"), Var("y")
    triples = _image_star(bench, rng, x, "a") + _image_star(bench, rng, y, "b")
    clauses = list(sym_clauses(x, k, y)) if symmetric else [SimClause(x, k, y)]
    return ExtendedBGP(triples, clauses)


def _q2(bench, rng, k, symmetric: bool, triangle: bool) -> ExtendedBGP:
    x, y, z = Var("x"), Var("y"), Var("z")
    triples = (
        _image_star(bench, rng, x, "a")
        + _image_star(bench, rng, y, "b")
        + _image_star(bench, rng, z, "c")
    )
    if symmetric:
        clauses = list(sym_clauses(x, k, y)) + list(sym_clauses(y, k, z))
    else:
        clauses = [SimClause(x, k, y), SimClause(y, k, z)]
    if triangle:
        clauses.append(SimClause(z, k, x))
    return ExtendedBGP(triples, clauses)


def _q3_base(bench, rng) -> tuple[list[TriplePattern], Var, Var]:
    """A BGP containing ``(x, depicts, y)`` with image ``y`` (plus the
    type constraint on ``x`` when available)."""
    x, y = Var("x"), Var("y")
    triples = _image_star(bench, rng, y, "a")
    # _image_star names the entity variable "ae"; rename it to x for
    # readability of the family definition.
    renamed = []
    for t in triples:
        s = x if t.s == Var("ae") else t.s
        o = x if t.o == Var("ae") else t.o
        renamed.append(TriplePattern(s, t.p, o))
    return renamed, x, y


def _q3(bench, rng, k) -> ExtendedBGP:
    triples, x, y = _q3_base(bench, rng)
    y2 = Var("y2")
    triples = triples + [TriplePattern(x, bench.depicts, y2)]
    return ExtendedBGP(triples, [SimClause(y, k, y2)])


def _q4(bench, rng, k) -> ExtendedBGP:
    """y participates in > 1 triple pattern; y' copies all of them."""
    x, y, y2 = Var("x"), Var("y"), Var("y2")
    image = int(rng.choice(bench.image_ids))
    depicting = bench.graph.matching(None, bench.depicts, image)
    entity = int(depicting[rng.integers(0, len(depicting)), 0])
    del entity  # mined only to guarantee the pattern is satisfiable
    image_type = bench.image_class[image]
    y_triples = [
        TriplePattern(x, bench.depicts, y),
        TriplePattern(y, bench.type_predicate, image_type),
    ]
    copied = [
        TriplePattern(
            y2 if t.s == y else t.s, t.p, y2 if t.o == y else t.o
        )
        for t in y_triples
    ]
    return ExtendedBGP(y_triples + copied, [SimClause(y, k, y2)])


def _q5(bench, rng, k) -> ExtendedBGP:
    base = _q3(bench, rng, k)
    y = Var("y")
    lonely = TriplePattern(y, Var("l1"), Var("l2"))
    return ExtendedBGP(list(base.triples) + [lonely], list(base.clauses))


def generate_workload(
    bench: WikimediaBenchmark, config: WorkloadConfig | None = None
) -> dict[str, list[ExtendedBGP]]:
    """Generate all families; returns ``{"Q1": [...], "Q1b": [...], ...}``.

    Every family is deterministic in ``config.seed``.
    """
    cfg = config or WorkloadConfig()
    if cfg.k > bench.knn_graph.K:
        raise ValidationError(
            f"workload k={cfg.k} exceeds benchmark K={bench.knn_graph.K}"
        )
    rng = np.random.default_rng(cfg.seed)
    families: dict[str, list[ExtendedBGP]] = {
        "Q1": [_q1(bench, rng, cfg.k, False) for _ in range(cfg.n_q1)],
        "Q1b": [_q1(bench, rng, cfg.k, True) for _ in range(cfg.n_q1)],
        "Q2": [_q2(bench, rng, cfg.k, False, False) for _ in range(cfg.n_q2)],
        "Q2b": [_q2(bench, rng, cfg.k, True, False) for _ in range(cfg.n_q2)],
        "Q2t": [_q2(bench, rng, cfg.k, False, True) for _ in range(cfg.n_q2)],
        "Q3": [_q3(bench, rng, cfg.k) for _ in range(cfg.n_q3)],
        "Q4": [_q4(bench, rng, cfg.k) for _ in range(cfg.n_q4)],
        "Q5": [_q5(bench, rng, cfg.k) for _ in range(cfg.n_q5)],
    }
    return families
