"""Pseudo query-log mining (the Sec. 6.1 methodology's first step).

The paper starts from 2,942 real Wikidata log queries that mention an
image variable; the workload families then splice similarity clauses
into them. Lacking the log, :func:`mine_log_queries` synthesizes one:
BGPs of the shapes dominating real SPARQL logs (Bonifati et al.'s
star / path / snowflake taxonomy), mined from concrete subgraphs of the
benchmark so every query is satisfiable, each mentioning at least one
image variable.

:func:`generate_workload_from_log` then applies the Q1/Q1b splicing rule
("join two queries by using the operator x <|_k y") to pairs of mined
log queries — the closest realization of the paper's construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.wikimedia import WikimediaBenchmark
from repro.query.model import ExtendedBGP, SimClause, TriplePattern, Var, sym_clauses
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class LogQuery:
    """One mined log query and its designated image variable."""

    patterns: tuple[TriplePattern, ...]
    image_var: Var
    shape: str
    """``star`` | ``path`` | ``snowflake``."""


def _rename(patterns: list[TriplePattern], suffix: str) -> list[TriplePattern]:
    """Suffix every variable name so two log queries can be joined."""

    def ren(term):
        if isinstance(term, Var):
            return Var(f"{term.name}{suffix}")
        return term

    return [TriplePattern(ren(t.s), ren(t.p), ren(t.o)) for t in patterns]


def _mine_star(bench: WikimediaBenchmark, rng: np.random.Generator) -> LogQuery:
    """Entity star: (?e, depicts, ?img), (?e, type, C), maybe (?e, r, o)."""
    image = int(rng.choice(bench.image_ids))
    depicting = bench.graph.matching(None, bench.depicts, image)
    entity = int(depicting[rng.integers(0, len(depicting)), 0])
    e, img = Var("e"), Var("img")
    patterns = [TriplePattern(e, bench.depicts, img)]
    type_rows = bench.graph.matching(entity, bench.type_predicate, None)
    if len(type_rows):
        patterns.append(
            TriplePattern(e, bench.type_predicate, int(type_rows[0, 2]))
        )
    outgoing = bench.graph.matching(entity, None, None)
    relational = outgoing[
        (outgoing[:, 1] != bench.depicts)
        & (outgoing[:, 1] != bench.type_predicate)
    ]
    if len(relational) and rng.random() < 0.6:
        row = relational[rng.integers(0, len(relational))]
        patterns.append(TriplePattern(e, int(row[1]), int(row[2])))
    return LogQuery(tuple(patterns), img, "star")


def _mine_path(bench: WikimediaBenchmark, rng: np.random.Generator) -> LogQuery:
    """Path: (?a, r, ?e), (?e, depicts, ?img) — mined from a real walk."""
    image = int(rng.choice(bench.image_ids))
    depicting = bench.graph.matching(None, bench.depicts, image)
    entity = int(depicting[rng.integers(0, len(depicting)), 0])
    incoming = bench.graph.matching(None, None, entity)
    incoming = incoming[incoming[:, 1] != bench.depicts]
    a, e, img = Var("a"), Var("e"), Var("img")
    patterns = [TriplePattern(e, bench.depicts, img)]
    if len(incoming):
        row = incoming[rng.integers(0, len(incoming))]
        patterns.insert(0, TriplePattern(a, int(row[1]), e))
    return LogQuery(tuple(patterns), img, "path")


def _mine_snowflake(
    bench: WikimediaBenchmark, rng: np.random.Generator
) -> LogQuery:
    """Snowflake: a star whose image also carries an attribute pattern."""
    base = _mine_star(bench, rng)
    img = base.image_var
    attr = bench.predicates["attr"]
    patterns = list(base.patterns)
    patterns.append(TriplePattern(img, attr, Var("val")))
    return LogQuery(tuple(patterns), img, "snowflake")


_MINERS = (_mine_star, _mine_path, _mine_snowflake)


def mine_log_queries(
    bench: WikimediaBenchmark, count: int, seed: int = 0
) -> list[LogQuery]:
    """Mine ``count`` satisfiable image-mentioning BGPs of mixed shape."""
    if count < 1:
        raise ValidationError("count must be >= 1")
    rng = np.random.default_rng(seed)
    queries = []
    for i in range(count):
        miner = _MINERS[i % len(_MINERS)]
        queries.append(miner(bench, rng))
    return queries


def splice_similarity(
    left: LogQuery,
    right: LogQuery,
    k: int,
    symmetric: bool = False,
) -> ExtendedBGP:
    """The Q1/Q1b rule: ``q_{x} . x <|_k y . q_{y}`` over two log queries.

    Variables are suffixed so the two BGPs stay disjoint except through
    the similarity clause.
    """
    left_patterns = _rename(list(left.patterns), "_l")
    right_patterns = _rename(list(right.patterns), "_r")
    x = Var(f"{left.image_var.name}_l")
    y = Var(f"{right.image_var.name}_r")
    clauses = (
        list(sym_clauses(x, k, y)) if symmetric else [SimClause(x, k, y)]
    )
    return ExtendedBGP(left_patterns + right_patterns, clauses)


def generate_workload_from_log(
    bench: WikimediaBenchmark,
    n_queries: int,
    k: int,
    seed: int = 0,
    symmetric: bool = False,
) -> list[ExtendedBGP]:
    """Mine a log and splice consecutive pairs into Q1/Q1b queries."""
    log = mine_log_queries(bench, 2 * n_queries, seed)
    return [
        splice_similarity(log[2 * i], log[2 * i + 1], k, symmetric)
        for i in range(n_queries)
    ]
