"""Benchmark data generation (Sec. 6.1 of the paper, scaled down).

The paper's benchmark combines the Wikidata graph with IMGpedia's image
nodes and visual-descriptor K-NN graph (617M triples, K = 50). Neither
dataset is available offline, and a pure-Python LTJ cannot drive that
scale; :mod:`repro.datasets.wikimedia` therefore generates a structural
stand-in — a skewed entity graph whose image nodes carry clustered
descriptors — and :mod:`repro.datasets.workload` assembles the Q1-Q5
query families with exactly the construction rules of Sec. 6.1.
:mod:`repro.datasets.classification` provides Gaussian-mixture analogues
of the Anuran Calls and Dry Bean datasets for the Fig. 3 precision
experiment. See DESIGN.md for the substitution rationale.
"""

from repro.datasets.classification import (
    make_anuran_like,
    make_drybean_like,
    make_gaussian_mixture,
)
from repro.datasets.query_log import (
    LogQuery,
    generate_workload_from_log,
    mine_log_queries,
    splice_similarity,
)
from repro.datasets.wikimedia import WikimediaBenchmark, WikimediaConfig, generate_benchmark
from repro.datasets.workload import WorkloadConfig, generate_workload

__all__ = [
    "WikimediaConfig",
    "WikimediaBenchmark",
    "generate_benchmark",
    "WorkloadConfig",
    "generate_workload",
    "LogQuery",
    "mine_log_queries",
    "splice_similarity",
    "generate_workload_from_log",
    "make_gaussian_mixture",
    "make_anuran_like",
    "make_drybean_like",
]
