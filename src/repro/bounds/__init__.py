"""Output-size bounds for extended BGPs (Sec. 4 of the paper).

* :mod:`repro.bounds.constraint_graph` — the constraint graph of Def. 9,
  acyclicity and SCC analysis, cyclic-constraint detection, and the
  "single 2-cyclic" class of Def. 12.
* :mod:`repro.bounds.linear_program` — the linear programs (1) (safe
  queries) and (2) (general, with ``Dom(x)`` weights), solved with
  ``scipy.optimize.linprog``; ``Q* = 2^{rho*}`` bounds ``|Q(G)|``.
* :mod:`repro.bounds.agm` — the classic AGM fractional-edge-cover bound
  for plain BGPs, for comparison (Example 4's ``N^{3/2}`` vs ``kN``).
"""

from repro.bounds.agm import agm_bound
from repro.bounds.constraint_graph import ConstraintGraph
from repro.bounds.linear_program import LPBound, solve_size_bound, verify_weights

__all__ = [
    "ConstraintGraph",
    "LPBound",
    "solve_size_bound",
    "verify_weights",
    "agm_bound",
]
