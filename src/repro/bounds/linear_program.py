"""The output-size linear programs of Sec. 4.1 (Eqs. (1) and (2)).

Variables of the program: a weight ``w_i`` per triple pattern, a weight
``delta_xy`` per constraint ``x <|_k y``, and — for program (2) — a
weight ``s_xy`` per constraint, accounting for the ``Dom(x)`` predicate
that makes unsafe queries safe.

Objective (program (2))::

    minimize  sum_i w_i log N  +  sum_{x <|_k y} (delta_xy log k + s_xy log D)

subject to, for each variable ``x`` of Q::

    sum_{i : x in t_i} w_i + sum_{z <|_k x} delta_zx + sum_{x <|_k y} s_xy >= 1

and, for each *cyclic* constraint ``x <|_k y``::

    (sum_{i : x in t_i} w_i + sum_{x <|_k z} s_xz) - delta_xy >= 0

Program (1) is the special case with all ``s`` forced to 0, valid for
safe queries. ``Q* = 2^{rho*}`` bounds ``|Q(G)|`` (tightly when the
constraints are acyclic — Lemma 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.bounds.constraint_graph import ConstraintGraph
from repro.query.model import ExtendedBGP, Var, is_var
from repro.utils.errors import QueryError, ValidationError


def verify_weights(
    query: ExtendedBGP, bound: "LPBound", tolerance: float = 1e-7
) -> bool:
    """Check an :class:`LPBound`'s weights against the constraints of
    program (2): per-variable cover and per-cyclic-clause restriction.

    Useful both as a test oracle and to validate externally supplied
    weight assignments (any admissible solution yields a valid — if not
    optimal — bound per the proof of Thm. 2).
    """
    graph = ConstraintGraph(query)
    for var in query.variables:
        total = 0.0
        for i, t in enumerate(query.triples):
            if var in t.variables:
                total += bound.triple_weights[i]
        for j, clause in enumerate(query.clauses):
            if is_var(clause.y) and clause.y == var:
                total += bound.delta_weights[j]
            if is_var(clause.x) and clause.x == var:
                total += bound.dom_weights[j]
        if total < 1.0 - tolerance:
            return False
    for j, clause in enumerate(query.clauses):
        if not graph.is_cyclic_constraint(clause):
            continue
        cover = 0.0
        for i, t in enumerate(query.triples):
            if clause.x in t.variables:
                cover += bound.triple_weights[i]
        for j2, other in enumerate(query.clauses):
            if is_var(other.x) and other.x == clause.x:
                cover += bound.dom_weights[j2]
        if cover - bound.delta_weights[j] < -tolerance:
            return False
    return True


@dataclass
class LPBound:
    """Solution of the size-bound linear program."""

    rho: float
    """Optimal objective value in log2 scale (``rho*(Q, N)``)."""

    triple_weights: dict[int, float]
    """``w_i`` per triple-pattern index."""

    delta_weights: dict[int, float]
    """``delta_xy`` per clause index."""

    dom_weights: dict[int, float]
    """``s_xy`` per clause index (all zero under program (1))."""

    @property
    def q_star(self) -> float:
        """The bound ``Q* = 2^{rho*}`` on the output size."""
        return 2.0**self.rho


def solve_size_bound(
    query: ExtendedBGP,
    num_edges: int,
    domain_size: int | None = None,
    pattern_cardinalities: list[int] | None = None,
    program: str = "auto",
) -> LPBound:
    """Solve program (1) or (2) for a query over an ``N``-edge graph.

    Args:
        query: the extended BGP (distance clauses are not part of the
            paper's programs and are rejected).
        num_edges: ``N``.
        domain_size: ``D``; required for program (2). Defaults to ``3N``
            (the paper's ``D <= 3N``).
        pattern_cardinalities: optional per-triple-pattern sizes
            ``|t_i|`` for the sharper instance-specific bound used in the
            proofs of Thms. 2-3; defaults to ``N`` for every pattern.
        program: ``"1"`` (safe queries only), ``"2"``, or ``"auto"``
            (program (1) when the query is safe, else (2)).

    Returns:
        The optimal weights and ``rho*`` (log2 scale).
    """
    if query.dist_clauses:
        raise QueryError("size bounds cover only <|_k clauses")
    if num_edges < 1:
        raise ValidationError("num_edges must be >= 1")
    if domain_size is None:
        domain_size = 3 * num_edges
    safe = query.is_safe()
    if program == "auto":
        program = "1" if safe else "2"
    if program == "1" and not safe:
        raise QueryError("program (1) requires a safe query (Sec. 4.1)")
    if program not in ("1", "2"):
        raise ValidationError(f"unknown program {program!r}")
    allow_dom = program == "2"

    triples = query.triples
    clauses = query.clauses
    if pattern_cardinalities is None:
        pattern_cardinalities = [num_edges] * len(triples)
    if len(pattern_cardinalities) != len(triples):
        raise ValidationError("pattern_cardinalities must match the triples")

    graph = ConstraintGraph(query)

    # LP variable layout: [w_0..w_{M-1}, delta_0..delta_{C-1}, s_0..s_{C-1}]
    n_w = len(triples)
    n_c = len(clauses)
    n_vars = n_w + (2 if allow_dom else 1) * n_c

    def w_idx(i: int) -> int:
        return i

    def d_idx(j: int) -> int:
        return n_w + j

    def s_idx(j: int) -> int:
        return n_w + n_c + j

    objective = np.zeros(n_vars)
    for i, size in enumerate(pattern_cardinalities):
        objective[w_idx(i)] = math.log2(max(size, 1))
    for j, clause in enumerate(clauses):
        objective[d_idx(j)] = math.log2(max(clause.k, 1))
        if allow_dom:
            objective[s_idx(j)] = math.log2(max(domain_size, 2))

    # scipy's linprog uses A_ub @ x <= b_ub; our constraints are >=.
    rows: list[np.ndarray] = []
    rhs: list[float] = []

    # Cover constraint per variable.
    for var in query.variables:
        row = np.zeros(n_vars)
        for i, t in enumerate(triples):
            if var in t.variables:
                row[w_idx(i)] = 1.0
        for j, clause in enumerate(clauses):
            if is_var(clause.y) and clause.y == var:
                row[d_idx(j)] = 1.0
            if allow_dom and is_var(clause.x) and clause.x == var:
                row[s_idx(j)] = 1.0
        rows.append(-row)
        rhs.append(-1.0)

    # Cyclic-constraint restriction per cyclic clause.
    for j, clause in enumerate(clauses):
        if not graph.is_cyclic_constraint(clause):
            continue
        row = np.zeros(n_vars)
        for i, t in enumerate(triples):
            if clause.x in t.variables:
                row[w_idx(i)] = 1.0
        if allow_dom:
            for j2, other in enumerate(clauses):
                if is_var(other.x) and other.x == clause.x:
                    row[s_idx(j2)] = 1.0
        row[d_idx(j)] -= 1.0
        rows.append(-row)
        rhs.append(0.0)

    result = linprog(
        c=objective,
        A_ub=np.array(rows) if rows else None,
        b_ub=np.array(rhs) if rhs else None,
        bounds=[(0, None)] * n_vars,
        method="highs",
    )
    if not result.success:
        raise QueryError(
            f"size-bound LP infeasible or failed: {result.message} "
            "(an unsafe query under program (1)?)"
        )
    x = result.x
    return LPBound(
        rho=float(result.fun),
        triple_weights={i: float(x[w_idx(i)]) for i in range(n_w)},
        delta_weights={j: float(x[d_idx(j)]) for j in range(n_c)},
        dom_weights=(
            {j: float(x[s_idx(j)]) for j in range(n_c)}
            if allow_dom
            else {j: 0.0 for j in range(n_c)}
        ),
    )
