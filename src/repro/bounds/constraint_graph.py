"""The constraint graph of an extended BGP (Def. 9 of the paper).

Nodes are the query variables; there is a directed edge ``x -> y`` per
clause ``x <|_k y`` whose two sides are both variables. The classes the
paper's theory distinguishes:

* *acyclic* constraints (Thm. 2: topological ordering is wco);
* *cyclic* constraints — an individual constraint is cyclic iff its edge
  lies on a cycle, i.e. both endpoints share a strongly connected
  component;
* *single 2-cyclic* graphs (Def. 12, Thm. 3): at most one cycle, of the
  form ``{x <|_k y, y <|_k x}``, and neither ``x`` nor ``y`` has an
  outgoing edge to a third variable.
"""

from __future__ import annotations

from repro.query.model import ExtendedBGP, SimClause, Var, is_var


class ConstraintGraph:
    """Directed graph over query variables induced by ``<|_k`` clauses."""

    def __init__(self, query: ExtendedBGP) -> None:
        self._query = query
        self._nodes: tuple[Var, ...] = query.variables
        self._edges: list[tuple[Var, Var, SimClause]] = []
        for clause in query.clauses:
            if is_var(clause.x) and is_var(clause.y):
                self._edges.append((clause.x, clause.y, clause))
        self._scc_of = self._strongly_connected_components()

    @property
    def nodes(self) -> tuple[Var, ...]:
        return self._nodes

    @property
    def edges(self) -> tuple[tuple[Var, Var], ...]:
        return tuple((x, y) for x, y, _c in self._edges)

    # ------------------------------------------------------------------
    # SCCs (iterative Tarjan) and derived classifications
    # ------------------------------------------------------------------
    def _strongly_connected_components(self) -> dict[Var, int]:
        adjacency: dict[Var, list[Var]] = {v: [] for v in self._nodes}
        for x, y, _c in self._edges:
            adjacency[x].append(y)
        index_of: dict[Var, int] = {}
        lowlink: dict[Var, int] = {}
        on_stack: set[Var] = set()
        stack: list[Var] = []
        scc_of: dict[Var, int] = {}
        counter = {"index": 0, "scc": 0}

        def strongconnect(root: Var) -> None:
            # Iterative Tarjan: frames of (node, iterator position).
            work = [(root, 0)]
            while work:
                node, child_pos = work.pop()
                if child_pos == 0:
                    index_of[node] = lowlink[node] = counter["index"]
                    counter["index"] += 1
                    stack.append(node)
                    on_stack.add(node)
                recursed = False
                children = adjacency[node]
                for position in range(child_pos, len(children)):
                    child = children[position]
                    if child not in index_of:
                        work.append((node, position + 1))
                        work.append((child, 0))
                        recursed = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[child])
                if recursed:
                    continue
                if lowlink[node] == index_of[node]:
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc_of[member] = counter["scc"]
                        if member == node:
                            break
                    counter["scc"] += 1
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for node in self._nodes:
            if node not in index_of:
                strongconnect(node)
        return scc_of

    def scc_id(self, var: Var) -> int:
        return self._scc_of[var]

    def is_cyclic_constraint(self, clause: SimClause) -> bool:
        """Whether a clause's edge participates in a cycle (Def. 9).

        Constant-sided clauses never do. An edge ``x -> y`` lies on a
        cycle iff ``x`` and ``y`` share an SCC.
        """
        if not (is_var(clause.x) and is_var(clause.y)):
            return False
        return self._scc_of[clause.x] == self._scc_of[clause.y]

    def cyclic_constraints(self) -> tuple[SimClause, ...]:
        return tuple(
            c for _x, _y, c in self._edges if self.is_cyclic_constraint(c)
        )

    def is_acyclic(self) -> bool:
        """Whether the constraint graph has no cycle (Def. 9)."""
        return not self.cyclic_constraints()

    def is_single_2_cyclic(self) -> bool:
        """Def. 12: at most one cycle, formed by ``{x <|_k y, y <|_k x}``,
        with no further outgoing edge from ``x`` or ``y`` to a third
        variable."""
        cyclic = self.cyclic_constraints()
        if not cyclic:
            return True
        if len(cyclic) != 2:
            return False
        first, second = cyclic
        if not (first.x == second.y and first.y == second.x):
            return False
        pair = {first.x, first.y}
        for x, y, _c in self._edges:
            if x in pair and y not in pair:
                return False
        return True

    def topological_order(self) -> tuple[Var, ...]:
        """A topological order of the variables (Kahn); requires
        acyclicity, else raises ``ValueError``."""
        indeg = {v: 0 for v in self._nodes}
        for _x, y, _c in self._edges:
            indeg[y] += 1
        frontier = [v for v in self._nodes if indeg[v] == 0]
        order: list[Var] = []
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            for x, y, _c in self._edges:
                if x == node:
                    indeg[y] -= 1
                    if indeg[y] == 0:
                        frontier.append(y)
        if len(order) != len(self._nodes):
            raise ValueError("constraint graph has a cycle")
        return tuple(order)

    def minimal_variables(self, unbound: set[Var] | None = None) -> tuple[Var, ...]:
        """The C-minimal variables (Def. 11) among ``unbound``.

        A node is C-minimal iff no path reaches it, which (paths needing
        a final edge) reduces to having no incoming edge between unbound
        variables.
        """
        pool = set(self._nodes) if unbound is None else unbound
        targets = {
            y for x, y, _c in self._edges if x in pool and y in pool
        }
        return tuple(v for v in self._nodes if v in pool and v not in targets)
