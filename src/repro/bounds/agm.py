"""The classic AGM bound for plain BGPs (Atserias-Grohe-Marx).

The fractional edge-cover LP: minimize ``sum_i w_i log |t_i|`` subject
to ``sum_{i : x in t_i} w_i >= 1`` for every variable. ``2^{rho}`` is
the maximum output size over instances of the given sizes. Used for
Example 4-style comparisons: treating a similarity clause as an opaque
``N``-sized relation yields ``O(N^{3/2})`` on the triangle query, while
the degree-aware program of Sec. 4.1 yields ``O(kN)``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import linprog

from repro.query.model import ExtendedBGP
from repro.utils.errors import QueryError, ValidationError


def agm_bound(
    query: ExtendedBGP,
    num_edges: int,
    pattern_cardinalities: list[int] | None = None,
    clause_cardinalities: list[int] | None = None,
) -> float:
    """The AGM bound ``2^{rho}`` of a query, in number of tuples.

    Similarity clauses are treated as opaque binary relations: their
    cardinality defaults to ``num_edges`` (the "virtual relation
    kNN(x, z)" reading of Example 4 before degree constraints are taken
    into account); pass ``clause_cardinalities`` to override (e.g.
    ``k * n`` per clause).
    """
    if num_edges < 1:
        raise ValidationError("num_edges must be >= 1")
    atoms: list[tuple[tuple, float]] = []
    if pattern_cardinalities is None:
        pattern_cardinalities = [num_edges] * len(query.triples)
    if len(pattern_cardinalities) != len(query.triples):
        raise ValidationError("pattern_cardinalities must match the triples")
    for t, size in zip(query.triples, pattern_cardinalities):
        atoms.append((t.variables, math.log2(max(size, 1))))
    if clause_cardinalities is None:
        clause_cardinalities = [num_edges] * len(query.clauses)
    if len(clause_cardinalities) != len(query.clauses):
        raise ValidationError("clause_cardinalities must match the clauses")
    for c, size in zip(query.clauses, clause_cardinalities):
        atoms.append((c.variables, math.log2(max(size, 1))))

    variables = query.variables
    if not variables:
        return 1.0
    n_atoms = len(atoms)
    objective = np.array([cost for _vars, cost in atoms])
    rows = []
    for var in variables:
        row = np.zeros(n_atoms)
        covered = False
        for idx, (atom_vars, _cost) in enumerate(atoms):
            if var in atom_vars:
                row[idx] = 1.0
                covered = True
        if not covered:
            raise QueryError(f"variable {var!r} occurs in no atom")
        rows.append(-row)
    result = linprog(
        c=objective,
        A_ub=np.array(rows),
        b_ub=np.full(len(rows), -1.0),
        bounds=[(0, None)] * n_atoms,
        method="highs",
    )
    if not result.success:
        raise QueryError(f"AGM LP failed: {result.message}")
    return float(2.0**result.fun)
