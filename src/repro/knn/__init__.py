"""K-nearest-neighbor graphs and their succinct representation.

Implements Sec. 3 of the paper:

* :mod:`repro.knn.graph` — the :class:`KnnGraph` model (Def. 4): for every
  participating node ``u``, an ordered list ``K-NN(u)`` of its ``K``
  closest other nodes.
* :mod:`repro.knn.builders` — exact construction (brute force for any
  metric, ``scipy`` KD-tree for Euclidean) and the approximate NN-Descent
  algorithm the paper cites for scalable construction.
* :mod:`repro.knn.succinct` — :class:`KnnRing`: the sequences ``S`` and
  ``S'`` plus bitvector ``B`` of Defs. 7-8, with the range computations of
  Lemmas 1-2 that let LTJ treat ``x <|_k y`` as trie ranges.
* :mod:`repro.knn.adjacency` — the plain (uncompressed) direct + reverse
  adjacency form the baseline stores (Sec. 5.3).
* :mod:`repro.knn.distance_index` — the distance-graph sequence ``D``
  sketched at the end of Sec. 3.3 for range-based similarity
  (``dist(x, y) <= d``).
"""

from repro.knn.adjacency import KnnAdjacency
from repro.knn.builders import (
    build_knn_graph,
    build_knn_graph_bruteforce,
    build_knn_graph_kdtree,
    build_knn_graph_nn_descent,
)
from repro.knn.distance_index import DistanceRangeIndex
from repro.knn.graph import KnnGraph
from repro.knn.metrics import METRICS, metric_by_name
from repro.knn.succinct import KnnRing

__all__ = [
    "KnnGraph",
    "KnnRing",
    "KnnAdjacency",
    "DistanceRangeIndex",
    "build_knn_graph",
    "build_knn_graph_bruteforce",
    "build_knn_graph_kdtree",
    "build_knn_graph_nn_descent",
    "METRICS",
    "metric_by_name",
]
