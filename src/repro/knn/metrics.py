"""Distance functions for K-NN graph construction.

The paper's techniques work "with any k-NN relation, without requiring
that it corresponds to some distance d" (Sec. 3.1) — in particular with
non-metric similarities. This module collects the common choices used
by the builders and examples:

* :func:`euclidean` / :func:`squared_euclidean` — the default (IMGpedia
  visual descriptors are compared under Euclidean-style distances);
* :func:`manhattan` — L1;
* :func:`chebyshev` — L-infinity;
* :func:`cosine_distance` — ``1 - cos(a, b)``; *not* a metric (no
  triangle inequality on raw vectors), exercising the non-metric path;
* :func:`hamming` — for binary/categorical codes.

Each function takes two 1-D numpy vectors and returns a float, matching
the ``Metric`` callable signature of :mod:`repro.knn.builders`.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """``||a - b||^2`` — rank-equivalent to Euclidean and cheaper."""
    diff = a - b
    return float(diff @ diff)


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """``||a - b||``."""
    return float(np.sqrt(squared_euclidean(a, b)))


def manhattan(a: np.ndarray, b: np.ndarray) -> float:
    """L1 distance ``sum |a_i - b_i|``."""
    return float(np.abs(a - b).sum())


def chebyshev(a: np.ndarray, b: np.ndarray) -> float:
    """L-infinity distance ``max |a_i - b_i|``."""
    return float(np.abs(a - b).max())


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``1 - cos(a, b)``; 0 for parallel vectors, 2 for opposite.

    Not a metric — used to exercise the paper's claim that any k-NN
    relation works. Raises on zero vectors (undefined direction).
    """
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        raise ValidationError("cosine distance undefined for zero vectors")
    return 1.0 - float(a @ b) / (na * nb)


def hamming(a: np.ndarray, b: np.ndarray) -> float:
    """Number of positions where the vectors differ."""
    return float(np.count_nonzero(a != b))


METRICS = {
    "euclidean": euclidean,
    "squared_euclidean": squared_euclidean,
    "manhattan": manhattan,
    "chebyshev": chebyshev,
    "cosine": cosine_distance,
    "hamming": hamming,
}


def metric_by_name(name: str):
    """Look up a metric callable by name (see :data:`METRICS`)."""
    try:
        return METRICS[name]
    except KeyError:
        raise ValidationError(
            f"unknown metric {name!r}; choose from {sorted(METRICS)}"
        ) from None
