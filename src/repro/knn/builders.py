"""K-NN graph construction (Sec. 3.1 of the paper).

The paper treats the K-NN graph as part of the input, built once at index
construction time. This module provides:

* :func:`build_knn_graph_bruteforce` — exact, any metric, ``Theta(n^2)``
  distance computations (the "naive approach" the paper mentions);
* :func:`build_knn_graph_kdtree` — exact for Euclidean data via scipy's
  ``cKDTree`` (standing in for the low-dimensional methods of Vaidya /
  Dickerson-Eppstein cited in the paper);
* :func:`build_knn_graph_nn_descent` — the approximate NN-Descent
  algorithm (Dong et al., WWW 2011 — the paper's reference [21]) for
  arbitrary similarity measures;
* :func:`build_knn_graph` — dispatching front end.

Ties are broken by node id, which fits Def. 3's "ties broken arbitrarily"
while keeping construction deterministic and testable.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
from scipy.spatial import cKDTree

from repro.knn.graph import KnnGraph
from repro.utils.errors import ValidationError

Metric = Callable[[np.ndarray, np.ndarray], float]


def _check_inputs(points: np.ndarray, members: np.ndarray | None, K: int):
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValidationError("points must be a 2-D array (n, dim)")
    if points.size and not np.isfinite(points).all():
        raise ValidationError("points must be finite (no NaN/inf)")
    n = points.shape[0]
    if members is None:
        members = np.arange(n, dtype=np.int64)
    else:
        members = np.asarray(members, dtype=np.int64)
        if members.shape != (n,):
            raise ValidationError("members must be parallel to points")
        if not np.array_equal(members, np.sort(members)) or (
            np.unique(members).size != members.size
        ):
            raise ValidationError("members must be sorted and distinct")
    if not 1 <= K < n:
        raise ValidationError(f"K must satisfy 1 <= K < n={n}, got {K}")
    return points, members


def build_knn_graph_bruteforce(
    points: np.ndarray,
    K: int,
    members: np.ndarray | None = None,
    metric: Metric | None = None,
    max_distance: float | None = None,
) -> KnnGraph:
    """Exact K-NN graph by computing all pairwise distances.

    Args:
        points: ``(n, dim)`` array of descriptors.
        K: neighbor-list length (``1 <= K < n``).
        members: node ids parallel to ``points`` (default ``0..n-1``).
        metric: optional distance callable; default squared-Euclidean
            (rank-equivalent to Euclidean and cheaper).
        max_distance: optionally truncate each list at this distance
            (under the *effective* metric, i.e. squared Euclidean by
            default) — the Sec. 3.1 relaxation "to disregard neighbors
            that are too far away".
    """
    points, members, = _check_inputs(points, members, K)
    n = points.shape[0]
    if metric is None:
        # Vectorized squared-Euclidean distance matrix.
        sq = (points**2).sum(axis=1)
        dist = sq[:, None] + sq[None, :] - 2.0 * points @ points.T
        np.maximum(dist, 0.0, out=dist)
    else:
        dist = np.empty((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(n):
                dist[i, j] = metric(points[i], points[j])
    np.fill_diagonal(dist, np.inf)
    neighbors = np.empty((n, K), dtype=np.int64)
    lengths = np.full(n, K, dtype=np.int64)
    for i in range(n):
        # Stable tie-break by index: lexsort on (index, distance).
        order = np.lexsort((np.arange(n), dist[i]))
        neighbors[i] = members[order[:K]]
        if max_distance is not None:
            lengths[i] = int(
                np.searchsorted(dist[i][order[:K]], max_distance, side="right")
            )
    if max_distance is None:
        return KnnGraph(members, neighbors)
    return KnnGraph(members, neighbors, lengths)


def build_knn_graph_kdtree(
    points: np.ndarray, K: int, members: np.ndarray | None = None
) -> KnnGraph:
    """Exact Euclidean K-NN graph via a KD-tree (scipy ``cKDTree``)."""
    points, members = _check_inputs(points, members, K)
    tree = cKDTree(points)
    # Query K+1 to drop each point itself.
    _dists, idx = tree.query(points, k=K + 1)
    n = points.shape[0]
    neighbors = np.empty((n, K), dtype=np.int64)
    for i in range(n):
        row = [j for j in idx[i] if j != i][:K]
        if len(row) < K:  # pragma: no cover - duplicate-point corner
            extras = [j for j in range(n) if j != i and j not in row]
            row.extend(extras[: K - len(row)])
        neighbors[i] = members[np.asarray(row, dtype=np.int64)]
    return KnnGraph(members, neighbors)


def build_knn_graph_nn_descent(
    points: np.ndarray,
    K: int,
    members: np.ndarray | None = None,
    metric: Metric | None = None,
    max_iters: int = 10,
    sample_rate: float = 1.0,
    seed: int = 0,
) -> KnnGraph:
    """Approximate K-NN graph via NN-Descent (paper's reference [21]).

    Starts from a random neighbor assignment and iteratively refines each
    node's list by comparing against its neighbors' neighbors, until an
    iteration produces no updates or ``max_iters`` is hit. Works with any
    distance callable; defaults to squared Euclidean.
    """
    points, members = _check_inputs(points, members, K)
    n = points.shape[0]
    rng = np.random.default_rng(seed)
    if metric is None:
        def metric(a: np.ndarray, b: np.ndarray) -> float:  # noqa: A001
            diff = a - b
            return float(diff @ diff)

    # heaps[i]: list of (dist, j, is_new) kept sorted, length <= K
    heaps: list[list[tuple[float, int, bool]]] = []
    for i in range(n):
        choices = rng.choice(n - 1, size=K, replace=False)
        choices = np.where(choices >= i, choices + 1, choices)
        entries = sorted(
            (metric(points[i], points[j]), int(j), True) for j in choices
        )
        heaps.append(entries)

    def try_insert(i: int, j: int, dist_ij: float) -> bool:
        heap = heaps[i]
        if any(entry[1] == j for entry in heap):
            return False
        if len(heap) >= K and dist_ij >= heap[-1][0]:
            return False
        heap.append((dist_ij, j, True))
        heap.sort()
        if len(heap) > K:
            heap.pop()
        return True

    for _ in range(max_iters):
        # Build combined (old+new, forward+reverse) candidate lists. A
        # "new" entry participates once in the join step and is then
        # marked old (Dong et al.'s incremental search); entries inserted
        # *during* this round stay new for the next round.
        new_candidates: list[list[int]] = [[] for _ in range(n)]
        old_candidates: list[list[int]] = [[] for _ in range(n)]
        for i in range(n):
            updated_heap: list[tuple[float, int, bool]] = []
            for dist_ij, j, is_new in heaps[i]:
                if is_new and (
                    sample_rate >= 1.0 or rng.random() < sample_rate
                ):
                    new_candidates[i].append(j)
                    new_candidates[j].append(i)
                    updated_heap.append((dist_ij, j, False))
                else:
                    if not is_new:
                        old_candidates[i].append(j)
                        old_candidates[j].append(i)
                    updated_heap.append((dist_ij, j, is_new))
            heaps[i] = updated_heap
        updates = 0
        for i in range(n):
            news = new_candidates[i]
            olds = old_candidates[i]
            for a_pos, a in enumerate(news):
                for b in news[a_pos + 1 :]:
                    if a == b:
                        continue
                    d = metric(points[a], points[b])
                    updates += try_insert(a, b, d)
                    updates += try_insert(b, a, d)
                for b in olds:
                    if a == b:
                        continue
                    d = metric(points[a], points[b])
                    updates += try_insert(a, b, d)
                    updates += try_insert(b, a, d)
        if not updates:
            break

    neighbors = np.empty((n, K), dtype=np.int64)
    for i in range(n):
        neighbors[i] = members[[j for _d, j, _new in heaps[i]]]
    return KnnGraph(members, neighbors)


def build_knn_graph(
    points: np.ndarray,
    K: int,
    members: np.ndarray | None = None,
    method: str = "auto",
    metric: Metric | None = None,
    **kwargs: object,
) -> KnnGraph:
    """Build a K-NN graph, dispatching on ``method``.

    ``method`` is one of ``"auto"`` (KD-tree for plain Euclidean, brute
    force otherwise), ``"bruteforce"``, ``"kdtree"``, ``"nn_descent"``.
    """
    if method == "auto":
        method = "kdtree" if metric is None else "bruteforce"
    if method == "bruteforce":
        return build_knn_graph_bruteforce(points, K, members, metric)
    if method == "kdtree":
        if metric is not None:
            raise ValidationError("kdtree supports only Euclidean distance")
        return build_knn_graph_kdtree(points, K, members)
    if method == "nn_descent":
        return build_knn_graph_nn_descent(
            points, K, members, metric, **kwargs  # type: ignore[arg-type]
        )
    raise ValidationError(f"unknown K-NN construction method: {method!r}")
