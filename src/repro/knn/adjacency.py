"""Plain (uncompressed) K-NN adjacency, the baseline's representation.

Sec. 5.3: "Both graphs are represented as adjacency vectors in plain
form" — the direct K-NN lists and the reverse (who-lists-me) lists. This
is deliberately *not* succinct; the space experiment (Sec. 6.2) contrasts
its footprint with :class:`~repro.knn.succinct.KnnRing`.
"""

from __future__ import annotations

import numpy as np

from repro.knn.graph import KnnGraph
from repro.utils.errors import ValidationError


class KnnAdjacency:
    """Direct + reverse K-NN adjacency in plain arrays."""

    def __init__(self, graph: KnnGraph) -> None:
        self._members = graph.members.copy()
        self._members.setflags(write=False)
        self._K = graph.K
        self._forward = graph.neighbor_table.copy()
        self._forward.setflags(write=False)
        self._lengths = graph.lengths.copy()
        self._lengths.setflags(write=False)
        # Reverse lists, each sorted by the rank at which the source lists
        # the target (so a k-prefix of the list is exactly the k-reverse
        # neighborhood).
        reverse = graph.reverse_lists()
        self._reverse_nodes: dict[int, np.ndarray] = {}
        self._reverse_ranks: dict[int, np.ndarray] = {}
        for v, pairs in reverse.items():
            if pairs:
                ranks = np.array([r for r, _u in pairs], dtype=np.int64)
                nodes = np.array([u for _r, u in pairs], dtype=np.int64)
            else:
                ranks = np.empty(0, dtype=np.int64)
                nodes = np.empty(0, dtype=np.int64)
            self._reverse_nodes[v] = nodes
            self._reverse_ranks[v] = ranks

    @property
    def members(self) -> np.ndarray:
        return self._members

    @property
    def K(self) -> int:
        return self._K

    def size_in_bytes(self) -> int:
        total = int(
            self._members.nbytes + self._forward.nbytes + self._lengths.nbytes
        )
        for v in self._reverse_nodes:
            total += int(self._reverse_nodes[v].nbytes)
            total += int(self._reverse_ranks[v].nbytes)
        return total

    def _index_of(self, node: int) -> int | None:
        idx = int(np.searchsorted(self._members, node))
        if idx < self._members.size and self._members[idx] == node:
            return idx
        return None

    def _check_k(self, k: int) -> int:
        if not 1 <= k <= self._K:
            raise ValidationError(f"k={k} outside [1, K={self._K}]")
        return k

    def neighbors_of(self, u: int, k: int) -> np.ndarray:
        """``k``-NN(``u``) from the direct graph; empty for non-members."""
        self._check_k(k)
        idx = self._index_of(u)
        if idx is None:
            return np.empty(0, dtype=np.int64)
        return self._forward[idx, : min(k, int(self._lengths[idx]))]

    def reverse_neighbors_of(self, v: int, k: int) -> np.ndarray:
        """All ``u`` with ``v in k-NN(u)`` from the reverse graph."""
        self._check_k(k)
        nodes = self._reverse_nodes.get(v)
        if nodes is None:
            return np.empty(0, dtype=np.int64)
        ranks = self._reverse_ranks[v]
        cutoff = int(np.searchsorted(ranks, k, side="right"))
        return nodes[:cutoff]

    def is_knn(self, u: int, v: int, k: int) -> bool:
        """The filtering predicate used on 2-ready clauses (Sec. 5.3)."""
        self._check_k(k)
        idx = self._index_of(u)
        if idx is None:
            return False
        row = self._forward[idx, : min(k, int(self._lengths[idx]))]
        return bool((row == v).any())
