"""Succinct K-NN graph: sequences ``S``, ``S'`` and bitvector ``B``.

This is the structure of Defs. 7-8 of the paper. With members identified
by their dense index ``ui`` in the sorted member array:

* ``S[ui*K + j]`` (0-based ``j``) is the ``(j+1)``-th nearest neighbor of
  member ``ui`` — the concatenation ``S_1 S_2 ... S_n`` of Def. 7;
* ``S'`` concatenates, per member ``v``, the nodes ``u`` having ``v`` in
  their ``K``-NN list, sorted by the rank ``j_u`` at which ``v`` appears
  (Def. 8);
* ``B = B_1 ... B_n`` with ``B_v = 1 0^{s_1} 1 0^{s_2} ... 1 0^{s_K}``
  marks, in unary, how many entries of ``S'_v`` come from each rank.

Both sequences are wavelet trees (so they support ``range_next_value``
and participate in leapfrog intersections), and ``B`` is a plain
bitvector with constant-time select — mirroring the SDSL layout of
Sec. 5. Lemma 1 gives the position arithmetic implemented in
:meth:`KnnRing.backward_range`.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.knn.graph import KnnGraph
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_tree import WaveletTree
from repro.utils.errors import ValidationError


class KnnRing:
    """Succinct K-NN index supporting forward and backward k-NN ranges."""

    def __init__(self, graph: KnnGraph) -> None:
        self._members = graph.members.copy()
        self._members.setflags(write=False)
        self._K = graph.K
        n = graph.num_members
        K = self._K
        sigma = int(self._members.max()) + 1 if n else 1

        # S: concatenation of the valid neighbor prefixes (Def. 7). With
        # full rows this is the plain row-major flattening and regions
        # are located arithmetically; truncated rows (Sec. 3.1's
        # "fewer than K neighbors" relaxation) use the offsets table.
        lengths = graph.lengths
        self._s_offsets = np.concatenate(
            ([0], np.cumsum(lengths, dtype=np.int64))
        )
        table = graph.neighbor_table
        if graph.is_truncated:
            parts = [table[i, : lengths[i]] for i in range(n)]
            s_seq = (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            )
            valid_ranks = np.concatenate(
                [np.arange(le, dtype=np.int64) for le in lengths]
            ) if n else np.empty(0, dtype=np.int64)
            sources = np.repeat(self._members, lengths)
        else:
            s_seq = table.reshape(-1)
            valid_ranks = np.tile(np.arange(K, dtype=np.int64), n)
            sources = np.repeat(self._members, K)

        # S' and B (Def. 8): for each member v, the sources u that list v,
        # ordered by the rank at which they list it; B marks rank groups
        # in unary. Built with one stable sort over all (v, rank, u).
        member_index = {int(m): i for i, m in enumerate(self._members)}
        targets = np.array(
            [member_index[int(v)] for v in s_seq], dtype=np.int64
        )
        order = np.lexsort((sources, valid_ranks, targets))
        sprime_seq = sources[order]
        # counts[v, t] = number of u with K-NN(u)[t] == member v.
        counts = np.zeros((n, K), dtype=np.int64)
        if targets.size:
            np.add.at(counts, (targets, valid_ranks), 1)
        flat_counts = counts.reshape(-1)
        # The g-th 1-bit (0-based group g) sits after g earlier 1s and all
        # zeros of earlier groups.
        zeros_before = np.concatenate(([0], np.cumsum(flat_counts)[:-1]))
        one_positions = np.arange(n * K, dtype=np.int64) + zeros_before
        bits = np.zeros(n * K + int(flat_counts.sum()), dtype=np.uint8)
        bits[one_positions] = 1
        self._S = WaveletTree(s_seq, sigma)
        self._Sprime = WaveletTree(sprime_seq, sigma)
        self._B = BitVector(bits)
        # Plain-int mirrors for the per-call hot paths (index_of /
        # next_member bisect and forward_range offsets).
        self._members_i: list[int] = self._members.tolist()
        self._s_offsets_i: list[int] = self._s_offsets.tolist()

    # ------------------------------------------------------------------
    # pickling (worker-pool transport)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, object]:
        """Pickle only the succinct structures and canonical arrays.

        The plain-int bisect mirrors are rebuilt lazily on first use
        after unpickling (see :meth:`__getattr__`); shipping them would
        multiply the worker-spawn payload for no information.
        """
        state = dict(self.__dict__)
        state.pop("_members_i", None)
        state.pop("_s_offsets_i", None)
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        # Re-establish the read-only contract on the fresh buffer.
        self._members.setflags(write=False)

    def __getattr__(self, name: str) -> list[int]:
        if name == "_members_i":
            value: list[int] = self._members.tolist()
        elif name == "_s_offsets_i":
            value = self._s_offsets.tolist()
        else:
            raise AttributeError(name)
        self.__dict__[name] = value
        return value

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def members(self) -> np.ndarray:
        return self._members

    @property
    def num_members(self) -> int:
        return int(self._members.size)

    @property
    def K(self) -> int:
        return self._K

    @property
    def S(self) -> WaveletTree:
        """The wavelet tree over ``S`` (forward neighbor lists)."""
        return self._S

    @property
    def Sprime(self) -> WaveletTree:
        """The wavelet tree over ``S'`` (rank-ordered reverse lists)."""
        return self._Sprime

    def wavelet_trees(self) -> tuple[WaveletTree, WaveletTree]:
        """``(S, S')`` — for per-query memo attachment."""
        return (self._S, self._Sprime)

    def size_in_bytes(self) -> int:
        return (
            self._S.size_in_bytes()
            + self._Sprime.size_in_bytes()
            + self._B.size_in_bytes()
            + self._members.nbytes
            + self._s_offsets.nbytes
        )

    def _check_k(self, k: int) -> int:
        if not 1 <= k <= self._K:
            raise ValidationError(
                f"k={k} outside [1, K={self._K}] fixed at construction"
            )
        return k

    def index_of(self, node: int) -> int | None:
        """Dense member index, or ``None`` for non-members."""
        members = self._members_i
        idx = bisect_left(members, node)
        if idx < len(members) and members[idx] == node:
            return idx
        return None

    # ------------------------------------------------------------------
    # the ranges of Lemma 2
    # ------------------------------------------------------------------
    def forward_range(self, u: int, k: int) -> tuple[int, int]:
        """Closed 0-based range of ``S`` listing ``k``-NN(``u``).

        Lemma 2(b): ``v in k-NN(u)`` iff ``v`` occurs in
        ``S[(u-1)K+1 .. (u-1)K+k]`` (1-based); with truncated rows the
        prefix is capped at the row's stored length. Returns an empty
        range (``lo > hi``) for non-member ``u`` — the paper's convention
        that predicates on non-participating nodes are false.
        """
        self._check_k(k)
        ui = self.index_of(u)
        if ui is None:
            return (0, -1)
        lo = self._s_offsets_i[ui]
        length = self._s_offsets_i[ui + 1] - lo
        return (lo, lo + min(k, length) - 1)

    def _sprime_boundary(self, vi: int, t: int) -> int:
        """0-based start position in ``S'`` of member ``vi``'s rank-``t``
        group (``t`` 1-based, ``1 <= t <= K+1``).

        Lemma 1: the ``j``-th 1 of ``B`` (with ``j = vi*K + t``) has
        ``j - 1`` ones before it, so the zeros before it — which are
        exactly the ``S'`` entries preceding the group — number
        ``select1(B, j) - (j - 1)``.
        """
        j = vi * self._K + t
        if j > self._B.n_ones:
            # Only happens for vi == n-1, t == K+1: end of S'.
            return len(self._Sprime)
        pos = self._B._select1_u(j)
        return pos - (j - 1)

    def backward_range(self, v: int, k: int) -> tuple[int, int]:
        """Closed 0-based range of ``S'`` listing ``{u : v in k-NN(u)}``.

        Lemma 2(c): ``v in k-NN(u)`` iff ``u`` occurs in
        ``S'[p_v(1) .. p_v(k+1) - 1]``. Empty for non-members.
        """
        self._check_k(k)
        vi = self.index_of(v)
        if vi is None:
            return (0, -1)
        lo = self._sprime_boundary(vi, 1)
        hi = self._sprime_boundary(vi, k + 1) - 1
        return (lo, hi)

    # ------------------------------------------------------------------
    # predicates and enumeration on top of the ranges
    # ------------------------------------------------------------------
    def contains(self, u: int, v: int, k: int) -> bool:
        """The predicate ``v in k-NN(u)`` answered on the succinct form.

        Values outside the structure's alphabet (non-members beyond the
        largest member id) are simply never similar.
        """
        if not 0 <= v < self._S.alphabet_size:
            return False
        lo, hi = self.forward_range(u, k)
        return self._S.rank_range(v, lo, hi) > 0

    def neighbors_of(self, u: int, k: int | None = None) -> list[int]:
        """Recover ``k``-NN(``u``) in distance order from ``S``.

        Demonstrates that the index replaces the raw K-NN graph (the
        space accounting in Sec. 6.2 relies on this).
        """
        k = self._K if k is None else self._check_k(k)
        lo, hi = self.forward_range(u, max(k, 1)) if k else (0, -1)
        return [self._S.access(i) for i in range(lo, hi + 1)]

    def reverse_neighbors_of(self, v: int, k: int | None = None) -> list[int]:
        """All ``u`` with ``v in k-NN(u)``, in increasing rank order."""
        k = self._K if k is None else self._check_k(k)
        lo, hi = self.backward_range(v, k)
        return [self._Sprime.access(i) for i in range(lo, hi + 1)]

    def leap_forward(self, u: int, k: int, lower: int) -> int | None:
        """Smallest ``v >= lower`` with ``v in k-NN(u)`` (leap in ``S``)."""
        lo, hi = self.forward_range(u, k)
        return self._S.range_next_value(lo, hi, lower) if lo <= hi else None

    def leap_backward(self, v: int, k: int, lower: int) -> int | None:
        """Smallest ``u >= lower`` with ``v in k-NN(u)`` (leap in ``S'``)."""
        lo, hi = self.backward_range(v, k)
        return self._Sprime.range_next_value(lo, hi, lower) if lo <= hi else None

    def next_member(self, lower: int) -> int | None:
        """Smallest member id ``>= lower`` (candidates for an unbound x)."""
        members = self._members_i
        idx = bisect_left(members, lower)
        if idx >= len(members):
            return None
        return members[idx]

    def next_reverse_nonempty(self, k: int, lower: int) -> int | None:
        """Smallest member ``v >= lower`` with a non-empty backward
        ``k``-range (candidates for ``y`` when ``x`` is still unbound)."""
        self._check_k(k)
        members = self._members_i
        idx = bisect_left(members, lower)
        while idx < len(members):
            v = members[idx]
            lo, hi = self.backward_range(v, k)
            if lo <= hi:
                return v
            idx += 1
        return None

    def forward_count(self, u: int, k: int) -> int:
        """Number of candidates for ``y`` given ``x = u`` (exactly ``k``
        for members, 0 otherwise) — used for the ``l_x`` estimates."""
        lo, hi = self.forward_range(u, k)
        return max(0, hi - lo + 1)

    def backward_count(self, v: int, k: int) -> int:
        """Number of candidates for ``x`` given ``y = v``."""
        lo, hi = self.backward_range(v, k)
        return max(0, hi - lo + 1)
