"""The K-NN graph model (Def. 4 of the paper).

A :class:`KnnGraph` records, for each *member* node ``u`` (a graph
constant), the ordered list ``K-NN(u)`` of its nearest other members,
closest first. The paper assumes all graph nodes participate but
explicitly allows two relaxations (Sec. 3.1):

* subsets of ``V`` — we make the member set explicit;
* "fewer than K neighbors for some nodes, for example to disregard
  neighbors that are too far away" — rows may be *truncated*: an
  optional ``lengths`` array gives each member's actual list length
  (``<= K``); entries beyond a row's length are padding and ignored.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.utils.errors import ValidationError


class KnnGraph:
    """Ordered (possibly truncated) K-NN lists over an explicit member set."""

    def __init__(
        self,
        members: np.ndarray | Iterable[int],
        neighbors: np.ndarray,
        lengths: np.ndarray | None = None,
    ) -> None:
        """Build from a sorted member array and an ``(n, K)`` neighbor table.

        Args:
            members: node ids participating in the similarity relation.
            neighbors: ``neighbors[i, j]`` is the id of the ``(j+1)``-th
                nearest member to ``members[i]`` (closest first). Valid
                entries must themselves be members and differ from the
                row owner (Def. 3: ``u`` is not in ``k``-NN(``u``)).
            lengths: per-row valid-prefix lengths (default: all ``K``).
                Entries at positions ``>= lengths[i]`` are padding.
        """
        mem = np.asarray(
            list(members) if not isinstance(members, np.ndarray) else members,
            dtype=np.int64,
        )
        nbr = np.asarray(neighbors, dtype=np.int64)
        if mem.ndim != 1:
            raise ValidationError("members must be one-dimensional")
        if np.unique(mem).size != mem.size:
            raise ValidationError("members must be distinct")
        if not np.array_equal(mem, np.sort(mem)):
            raise ValidationError("members must be sorted")
        if nbr.ndim != 2 or nbr.shape[0] != mem.size:
            raise ValidationError(
                f"neighbors must be (n={mem.size}, K); got shape {nbr.shape}"
            )
        if mem.size and nbr.shape[1] >= mem.size:
            raise ValidationError(
                f"K={nbr.shape[1]} must satisfy K < |members|={mem.size} (Def. 3)"
            )
        if lengths is None:
            lens = np.full(mem.size, nbr.shape[1], dtype=np.int64)
        else:
            lens = np.asarray(lengths, dtype=np.int64)
            if lens.shape != (mem.size,):
                raise ValidationError("lengths must be parallel to members")
            if lens.size and (lens.min() < 0 or lens.max() > nbr.shape[1]):
                raise ValidationError(
                    f"lengths must lie in [0, K={nbr.shape[1]}]"
                )
        if nbr.size:
            member_set = set(mem.tolist())
            for i in range(nbr.shape[0]):
                row = nbr[i, : lens[i]]
                if row.size and not set(row.tolist()) <= member_set:
                    raise ValidationError(
                        f"row {i}: neighbor entries must be members"
                    )
                if (row == mem[i]).any():
                    raise ValidationError("a node cannot be its own neighbor")
                if np.unique(row).size != row.size:
                    raise ValidationError(
                        f"duplicate neighbor in row {i} (member {mem[i]})"
                    )
        self._members = mem
        self._members.setflags(write=False)
        self._neighbors = nbr
        self._neighbors.setflags(write=False)
        self._lengths = lens
        self._lengths.setflags(write=False)

    @classmethod
    def from_lists(
        cls,
        members: np.ndarray | Iterable[int],
        lists: Sequence[Sequence[int]],
        K: int,
    ) -> "KnnGraph":
        """Build from per-member variable-length neighbor lists.

        Rows shorter than ``K`` are padded (the padding values are never
        read); rows longer than ``K`` are rejected.
        """
        mem = np.asarray(
            list(members) if not isinstance(members, np.ndarray) else members,
            dtype=np.int64,
        )
        if len(lists) != mem.size:
            raise ValidationError("lists must be parallel to members")
        lengths = np.array([len(row) for row in lists], dtype=np.int64)
        if lengths.size and lengths.max() > K:
            raise ValidationError(f"a list exceeds K={K}")
        table = np.zeros((mem.size, K), dtype=np.int64)
        if mem.size:
            table[:] = mem[0]  # arbitrary member id as padding
        for i, row in enumerate(lists):
            table[i, : len(row)] = row
        return cls(mem, table, lengths)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def members(self) -> np.ndarray:
        """Sorted node ids participating in the similarity relation."""
        return self._members

    @property
    def num_members(self) -> int:
        return int(self._members.size)

    @property
    def K(self) -> int:
        """The construction-time neighbor-list capacity (Sec. 3.2)."""
        return int(self._neighbors.shape[1])

    @property
    def neighbor_table(self) -> np.ndarray:
        """The raw padded ``(n, K)`` neighbor-id table (read-only).

        Only the ``lengths[i]``-prefix of row ``i`` is meaningful.
        """
        return self._neighbors

    @property
    def lengths(self) -> np.ndarray:
        """Valid-prefix length per member row."""
        return self._lengths

    @property
    def is_truncated(self) -> bool:
        """Whether any member has fewer than ``K`` neighbors."""
        return bool((self._lengths < self.K).any()) if self.num_members else False

    def size_in_bytes(self) -> int:
        return int(
            self._members.nbytes + self._neighbors.nbytes + self._lengths.nbytes
        )

    # ------------------------------------------------------------------
    # membership and lookups
    # ------------------------------------------------------------------
    def is_member(self, node: int) -> bool:
        idx = np.searchsorted(self._members, node)
        return idx < self._members.size and self._members[idx] == node

    def index_of(self, node: int) -> int | None:
        """Dense member index of ``node``, or ``None`` if not a member."""
        idx = int(np.searchsorted(self._members, node))
        if idx < self._members.size and self._members[idx] == node:
            return idx
        return None

    def length_of(self, node: int) -> int:
        """Number of stored neighbors of ``node`` (0 for non-members)."""
        idx = self.index_of(node)
        return int(self._lengths[idx]) if idx is not None else 0

    def neighbors_of(self, node: int, k: int | None = None) -> np.ndarray:
        """``k``-NN(``node``) in distance order; empty for non-members.

        Truncated rows return at most their stored length.
        """
        idx = self.index_of(node)
        if idx is None:
            return np.empty(0, dtype=np.int64)
        k = self.K if k is None else k
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        return self._neighbors[idx, : min(k, self.K, int(self._lengths[idx]))]

    def rank_of(self, u: int, v: int) -> int | None:
        """1-based position of ``v`` in ``K-NN(u)``, or ``None``.

        ``rank_of(u, v) <= k`` is exactly the predicate ``v in k-NN(u)``.
        """
        idx = self.index_of(u)
        if idx is None:
            return None
        row = self._neighbors[idx, : int(self._lengths[idx])]
        hits = np.flatnonzero(row == v)
        if not hits.size:
            return None
        return int(hits[0]) + 1

    def is_knn(self, u: int, v: int, k: int) -> bool:
        """The predicate ``v in k-NN(u)`` (Def. 3)."""
        if k > self.K:
            raise ValidationError(
                f"query k={k} exceeds construction-time K={self.K} (Sec. 3.2)"
            )
        rank = self.rank_of(u, v)
        return rank is not None and rank <= k

    def reverse_lists(self) -> dict[int, list[tuple[int, int]]]:
        """For each member ``v``: the list of ``(rank, u)`` with
        ``K-NN(u)[rank] = v``, sorted by increasing rank (Def. 8 order).

        This is the transpose used to build ``S'`` and the baseline's
        reverse adjacency.
        """
        out: dict[int, list[tuple[int, int]]] = {int(v): [] for v in self._members}
        n, K = self._neighbors.shape
        for rank in range(K):
            column = self._neighbors[:, rank]
            for i in range(n):
                if rank < self._lengths[i]:
                    out[int(column[i])].append((rank + 1, int(self._members[i])))
        return out
