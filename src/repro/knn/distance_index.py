"""Range-based similarity index: the sequence ``D`` of Sec. 3.3.

For clauses ``dist(x, y) <= d`` (with ``d <= d_max`` fixed at
construction), the paper sketches a structure "much like S'": for every
member ``u``, all nodes within distance ``d_max`` of ``u`` in increasing
distance order, concatenated into a sequence ``D`` represented as a
wavelet tree, with a bitvector marking each member's region and a
parallel array of distances for the binary search of the ``<= d`` prefix.

Since metric distances are symmetric, one structure serves both
directions of a clause.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Callable

import numpy as np

from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_tree import WaveletTree
from repro.utils.errors import ValidationError

Metric = Callable[[np.ndarray, np.ndarray], float]


class DistanceRangeIndex:
    """Succinct index answering ``{v : dist(u, v) <= d}`` as a range."""

    def __init__(
        self,
        points: np.ndarray,
        d_max: float,
        members: np.ndarray | None = None,
        metric: Metric | None = None,
    ) -> None:
        """Precompute, per member, the ``d_max``-neighborhood by distance.

        Args:
            points: ``(n, dim)`` descriptors, parallel to ``members``.
            d_max: maximum distance of interest; queries must use
                ``d <= d_max``.
            members: node ids (default ``0..n-1``), sorted and distinct.
            metric: distance callable; defaults to Euclidean.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValidationError("points must be (n, dim)")
        if pts.size and not np.isfinite(pts).all():
            raise ValidationError("points must be finite (no NaN/inf)")
        n = pts.shape[0]
        if members is None:
            mem = np.arange(n, dtype=np.int64)
        else:
            mem = np.asarray(members, dtype=np.int64)
            if mem.shape != (n,):
                raise ValidationError("members must be parallel to points")
            if not np.array_equal(mem, np.sort(mem)):
                raise ValidationError("members must be sorted")
        if d_max <= 0:
            raise ValidationError("d_max must be positive")
        self._members = mem
        self._members.setflags(write=False)
        # Plain-int mirror for the per-leap bisect lookups: indexing a
        # numpy array in the LTJ inner loop boxes a fresh scalar per
        # probe (see KnnRing, which keeps the same mirror).
        self._members_i: list[int] = mem.tolist()
        self._d_max = float(d_max)

        if metric is None:
            sq = (pts**2).sum(axis=1)
            dist = np.sqrt(
                np.maximum(sq[:, None] + sq[None, :] - 2.0 * pts @ pts.T, 0.0)
            )
        else:
            dist = np.empty((n, n), dtype=np.float64)
            for i in range(n):
                for j in range(n):
                    dist[i, j] = metric(pts[i], pts[j])
        np.fill_diagonal(dist, np.inf)

        seq_parts: list[np.ndarray] = []
        dist_parts: list[np.ndarray] = []
        lengths = np.zeros(n, dtype=np.int64)
        for i in range(n):
            within = np.flatnonzero(dist[i] <= self._d_max)
            order = np.lexsort((within, dist[i][within]))
            chosen = within[order]
            seq_parts.append(mem[chosen])
            dist_parts.append(dist[i][chosen])
            lengths[i] = chosen.size
        seq = (
            np.concatenate(seq_parts) if seq_parts else np.empty(0, dtype=np.int64)
        )
        self._distances = (
            np.concatenate(dist_parts)
            if dist_parts
            else np.empty(0, dtype=np.float64)
        )
        # Plain-float mirror of the parallel distance array: every
        # range_within() binary-searches one region, and doing that
        # with np.searchsorted on a slice of the canonical array costs
        # a view allocation plus numpy dispatch per *leap* — measured
        # at ~7-9% of the whole leap_within loop on mmap-attached
        # structures. bisect on the list mirror is allocation-free.
        self._distances_i: list[float] = self._distances.tolist()
        sigma = int(mem.max()) + 1 if n else 1
        self._D = WaveletTree(seq, sigma)
        # Region marks: 1 0^{len_0} 1 0^{len_1} ... as in B of Def. 8.
        total = int(lengths.sum())
        bits = np.zeros(n + total, dtype=np.uint8)
        one_positions = np.arange(n, dtype=np.int64) + np.concatenate(
            ([0], np.cumsum(lengths)[:-1])
        )
        bits[one_positions] = 1
        self._B = BitVector(bits)

    # ------------------------------------------------------------------
    # pickling (worker-pool transport)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, object]:
        """Pickle without the plain-scalar mirrors (rebuilt lazily)."""
        state = dict(self.__dict__)
        state.pop("_members_i", None)
        state.pop("_distances_i", None)
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._members.setflags(write=False)

    def __getattr__(self, name: str) -> list[int] | list[float]:
        # Lazy mirror rebuild after unpickling or shm/mmap attachment
        # (attach_buffer restores only the canonical arrays).
        if name == "_members_i":
            members: list[int] = self._members.tolist()
            self.__dict__[name] = members
            return members
        if name == "_distances_i":
            distances: list[float] = self._distances.tolist()
            self.__dict__[name] = distances
            return distances
        raise AttributeError(name)

    @property
    def members(self) -> np.ndarray:
        return self._members

    @property
    def d_max(self) -> float:
        return self._d_max

    @property
    def D(self) -> WaveletTree:
        """The wavelet tree over the concatenated neighborhoods."""
        return self._D

    def size_in_bytes(self) -> int:
        return (
            self._D.size_in_bytes()
            + self._B.size_in_bytes()
            + self._distances.nbytes
            + self._members.nbytes
        )

    def _index_of(self, node: int) -> int | None:
        members = self._members_i
        idx = bisect_left(members, node)
        if idx < len(members) and members[idx] == node:
            return idx
        return None

    def _region_of(self, ui: int) -> tuple[int, int]:
        """Closed 0-based range of member index ``ui``'s region in ``D``."""
        # ``ui`` comes from _index_of, so the select arguments are
        # in-range by construction and the unchecked kernels apply.
        pos = self._B._select1_u(ui + 1)
        lo = pos - ui  # zeros before the (ui+1)-th one
        if ui + 2 <= self._B.n_ones:
            hi = self._B._select1_u(ui + 2) - (ui + 1) - 1
        else:
            hi = len(self._D) - 1
        return lo, hi

    def range_within(self, u: int, d: float) -> tuple[int, int]:
        """Closed 0-based range of ``D`` listing ``{v : dist(u, v) <= d}``.

        The prefix of the (distance-sorted) region is located by binary
        search on the parallel distance array, as described in Sec. 3.3.
        """
        if d > self._d_max:
            raise ValidationError(
                f"query distance {d} exceeds construction d_max={self._d_max}"
            )
        ui = self._index_of(u)
        if ui is None:
            return (0, -1)
        lo, hi = self._region_of(ui)
        if lo > hi:
            return (0, -1)
        # Bounded bisect on the plain-float mirror: equivalent to
        # np.searchsorted(self._distances[lo:hi+1], d, "right") without
        # materializing a view or boxing a numpy scalar per call.
        cnt = bisect_right(self._distances_i, d, lo, hi + 1) - lo
        return (lo, lo + cnt - 1)

    def neighbors_within(self, u: int, d: float) -> list[int]:
        """All ``v`` with ``dist(u, v) <= d``, nearest first."""
        lo, hi = self.range_within(u, d)
        return [self._D.access(i) for i in range(lo, hi + 1)]

    def count_within(self, u: int, d: float) -> int:
        """Number of nodes within distance ``d`` of ``u`` (the per-binding
        ``k`` the paper notes could steer variable ordering)."""
        lo, hi = self.range_within(u, d)
        return max(0, hi - lo + 1)

    def leap_within(self, u: int, d: float, lower: int) -> int | None:
        """Smallest ``v >= lower`` with ``dist(u, v) <= d``."""
        lo, hi = self.range_within(u, d)
        if lo > hi:
            return None
        return self._D.range_next_value(lo, hi, lower)

    def contains(self, u: int, v: int, d: float) -> bool:
        """The predicate ``dist(u, v) <= d`` answered on the index.

        Values outside the alphabet (beyond the largest member id) are
        never within range.
        """
        if not 0 <= v < self._D.alphabet_size:
            return False
        lo, hi = self.range_within(u, d)
        return lo <= hi and self._D.rank_range(v, lo, hi) > 0

    def next_member(self, lower: int) -> int | None:
        """Smallest member id ``>= lower``."""
        members = self._members_i
        idx = bisect_left(members, lower)
        if idx >= len(members):
            return None
        return members[idx]
