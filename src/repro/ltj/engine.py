"""The Leapfrog TrieJoin engine over leapfrog relations.

Classic variable elimination (Sec. 2.2) generalized to any mix of
:class:`~repro.ltj.relation.LeapRelation` atoms: at each step an
ordering strategy picks a variable, the engine leapfrog-intersects the
candidate streams of every atom containing it, and each intersection
member is bound in those atoms before recursing. Similarity clauses thus
participate in the very same intersections as triple patterns, which is
the core idea of Sec. 3.3.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.ltj.ordering import MinCandidatesOrdering, OrderingContext, OrderingStrategy
from repro.ltj.stats import EvaluationStats
from repro.query.model import Var
from repro.utils.errors import QueryError
from repro.utils.timing import Stopwatch

# How many candidate attempts between timeout polls.
_TIMEOUT_CHECK_INTERVAL = 256


@dataclass(frozen=True)
class FirstLevelPlan:
    """Outcome of :meth:`LTJEngine.first_level`: the first variable the
    ordering chose and its full leapfrog-intersected candidate list.

    ``variable`` is ``None`` when some relation is statically empty —
    the search space is empty and there is nothing to shard.
    """

    variable: Var | None
    candidates: tuple[int, ...]


class LTJEngine:
    """Evaluate a conjunction of leapfrog relations by LTJ."""

    def __init__(
        self,
        relations: Sequence[object],
        ordering: OrderingStrategy | None = None,
        timeout: float | None = None,
        limit: int | None = None,
        intersection: str = "leapfrog",
        trace: object | None = None,
    ) -> None:
        """Set up an evaluation.

        Args:
            relations: the atoms (each a :class:`LeapRelation`).
            ordering: variable-ordering strategy; defaults to the
                adaptive min-``l_x`` rule.
            timeout: optional wall-clock budget in seconds. On expiry the
                run stops and ``stats.timed_out`` is set (no exception).
            limit: optional cap on the number of solutions.
            intersection: ``"leapfrog"`` (Veldhuizen's algorithm: always
                advance the atom with the smallest candidate to the
                largest one) or ``"roundrobin"`` (repeated passes until a
                fixpoint). Both are correct; leapfrog issues fewer
                ``leap`` calls on skewed intersections.
            trace: optional :class:`repro.obs.trace.QueryTrace` recording
                per-variable leap/candidate/binding counters and ordering
                decisions. ``None`` (default) disables tracing; every
                recording site is guarded by a single ``is not None``
                test so the disabled path stays hot-loop cheap.
        """
        if not relations:
            raise QueryError("LTJ requires at least one relation")
        if intersection not in ("leapfrog", "roundrobin"):
            raise QueryError(
                f"unknown intersection strategy {intersection!r}"
            )
        self._relations = list(relations)
        self._ordering = ordering or MinCandidatesOrdering()
        self._timeout = timeout
        self._limit = limit
        self._intersection = intersection
        self._trace = trace
        self._variables: tuple[Var, ...] = self._collect_variables()
        self._atom_count = {
            v: sum(1 for r in self._relations if v in r.variables)
            for v in self._variables
        }
        self._lonely = frozenset(
            v for v, count in self._atom_count.items() if count == 1
        )
        self.stats = EvaluationStats()
        self.stats.sim_variables = frozenset(
            v
            for r in self._relations
            if self._is_similarity(r)
            for v in r.variables
        )

    @staticmethod
    def _is_similarity(relation: object) -> bool:
        # Duck-typed: clause relations carry a `clause` attribute.
        return hasattr(relation, "clause")

    def _collect_variables(self) -> tuple[Var, ...]:
        seen: list[Var] = []
        for relation in self._relations:
            for var in sorted(relation.variables):
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    @property
    def variables(self) -> tuple[Var, ...]:
        return self._variables

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def run(self) -> Iterator[dict[Var, int]]:
        """Enumerate solutions as variable -> constant dictionaries.

        Stops early (without raising) when the timeout expires or the
        solution limit is reached; check ``self.stats`` afterwards.
        Stats are finalized in a ``finally`` block, so they are valid
        even when the consumer abandons the generator before exhaustion
        (early ``break``, ``close()``, garbage collection).

        For the duration of the run, every wavelet tree reachable through
        a relation's ``wavelet_trees()`` hook gets a per-query memo
        attached (see :meth:`WaveletTree.begin_query_memo`): backtracking
        repeats many identical rank/leap traversals, and the trees are
        immutable, so caching them within one evaluation is free of
        staleness. The memo changes only the cost of operations — logical
        op counts (and therefore traces) are unchanged.
        """
        stopwatch = Stopwatch(self._timeout)
        self.stats = EvaluationStats()
        self.stats.sim_variables = frozenset(
            v
            for r in self._relations
            if self._is_similarity(r)
            for v in r.variables
        )
        trees = self._memo_trees()
        for tree in trees:
            tree.begin_query_memo()
        try:
            if not any(r.is_empty() for r in self._relations):
                assignment: dict[Var, int] = {}
                yield from self._search(
                    assignment, stopwatch, first_descent=True
                )
        except _Expired:
            self.stats.timed_out = True
        finally:
            for tree in trees:
                tree.end_query_memo()
            self.stats.elapsed = stopwatch.elapsed()
            if self._trace is not None:
                self._trace.finish(self.stats)

    def _memo_trees(self) -> list[object]:
        """Deduplicated wavelet trees reachable from the relations."""
        trees: dict[int, object] = {}
        for relation in self._relations:
            hook = getattr(relation, "wavelet_trees", None)
            if hook is None:
                continue
            for tree in hook():
                trees[id(tree)] = tree
        return list(trees.values())

    def evaluate(self) -> list[dict[Var, int]]:
        """Collect all solutions into a list (see :meth:`run`)."""
        return list(self.run())

    # ------------------------------------------------------------------
    # domain-sharded evaluation (see repro.parallel)
    # ------------------------------------------------------------------
    def first_level(self) -> FirstLevelPlan:
        """Serial-identical depth-0 prologue of a domain-sharded run.

        Performs exactly the work the serial :meth:`run` does before the
        first bind: resets stats, attaches the per-query memos, checks
        relation emptiness, lets the ordering choose the first variable,
        and enumerates that variable's full leapfrog intersection
        *without binding any candidate*. ``leap`` is pure given the
        current (empty) binding stack, so the candidate list — and every
        counter recorded along the way (attempts, per-variable candidate
        and leap counts, the depth-0 ordering decision, wavelet op
        counts) — is identical to the serial run's depth-0 contribution.
        A sharded execution that hands a partition of the candidates to
        :meth:`run_prebound` workers therefore sums to the serial totals
        exactly, for any partition.

        The trace (if any) is *not* finished here: the caller merges the
        workers' counters first and finalizes the trace itself.
        """
        if not self._variables:
            raise QueryError(
                "first_level requires at least one variable to shard on"
            )
        stopwatch = Stopwatch(self._timeout)
        self.stats = EvaluationStats()
        self.stats.sim_variables = frozenset(
            v
            for r in self._relations
            if self._is_similarity(r)
            for v in r.variables
        )
        trees = self._memo_trees()
        for tree in trees:
            tree.begin_query_memo()
        try:
            if any(r.is_empty() for r in self._relations):
                return FirstLevelPlan(None, ())
            context = self._context({})
            var = self._ordering.choose(context)
            self.stats.first_descent_order.append(var)
            atoms = [r for r in self._relations if var in r.free_variables]
            vc = None
            if self._trace is not None:
                self._trace.record_decision(
                    0,
                    var,
                    context.estimates,
                    self._ordering.describe(context, var),
                )
                vc = self._trace.var(var)
                vc.fanout = max(vc.fanout, len(atoms))
            candidates: list[int] = []
            candidate = 0
            while True:
                found = self._leapfrog(atoms, var, candidate, vc)
                if found is None:
                    break
                self.stats.attempts += 1
                if vc is not None:
                    vc.candidates += 1
                candidates.append(found)
                if self.stats.attempts % _TIMEOUT_CHECK_INTERVAL == 0:
                    if stopwatch.expired():
                        self.stats.timed_out = True
                        break
                candidate = found + 1
            return FirstLevelPlan(var, tuple(candidates))
        finally:
            for tree in trees:
                tree.end_query_memo()
            self.stats.elapsed = stopwatch.elapsed()

    def run_prebound(
        self, var: Var, candidates: Sequence[int]
    ) -> Iterator[dict[Var, int]]:
        """Resume the search below pre-enumerated first-level candidates.

        The worker half of a domain-sharded run: ``var`` is the first
        variable a :meth:`first_level` call chose (on an identically
        compiled engine) and ``candidates`` a contiguous slice of the
        candidate list it enumerated. Each candidate is bound in every
        atom containing ``var`` and the ordinary recursive search
        continues at depth 1. Depth-0 work — the ordering decision, the
        candidate attempts, the leapfrog ``leap`` calls — is *not*
        re-recorded here, because the parent already counted it; what is
        recorded (bindings, failed bindings, all depth >= 1 counters)
        is precisely the serial run's share for these candidates.
        """
        if var not in self._variables:
            raise QueryError(f"unknown first variable {var!r}")
        stopwatch = Stopwatch(self._timeout)
        self.stats = EvaluationStats()
        self.stats.sim_variables = frozenset(
            v
            for r in self._relations
            if self._is_similarity(r)
            for v in r.variables
        )
        trees = self._memo_trees()
        for tree in trees:
            tree.begin_query_memo()
        try:
            if not any(r.is_empty() for r in self._relations):
                atoms = [
                    r for r in self._relations if var in r.free_variables
                ]
                vc = (
                    self._trace.var(var)
                    if self._trace is not None
                    else None
                )
                assignment: dict[Var, int] = {}
                first_descent = True
                polled = 0
                for candidate in candidates:
                    polled += 1
                    if polled % _TIMEOUT_CHECK_INTERVAL == 0:
                        if stopwatch.expired():
                            raise _Expired()
                    ok = True
                    bound_atoms = []
                    for relation in atoms:
                        bound_atoms.append(relation)
                        if not relation.bind(var, candidate):
                            ok = False
                            break
                    if vc is not None:
                        if ok:
                            vc.bindings += 1
                        else:
                            vc.failed_bindings += 1
                    if ok:
                        self.stats.bindings += 1
                        assignment[var] = candidate
                        yield from self._search(
                            assignment, stopwatch, first_descent
                        )
                        first_descent = False
                        del assignment[var]
                        if (
                            self._limit is not None
                            and self.stats.solutions >= self._limit
                        ):
                            for relation in reversed(bound_atoms):
                                relation.unbind(var)
                            return
                    for relation in reversed(bound_atoms):
                        relation.unbind(var)
        except _Expired:
            self.stats.timed_out = True
        finally:
            for tree in trees:
                tree.end_query_memo()
            self.stats.elapsed = stopwatch.elapsed()
            if self._trace is not None:
                self._trace.finish(self.stats)

    # ------------------------------------------------------------------
    def _search(
        self,
        assignment: dict[Var, int],
        stopwatch: Stopwatch,
        first_descent: bool,
    ) -> Iterator[dict[Var, int]]:
        if len(assignment) == len(self._variables):
            self.stats.solutions += 1
            yield dict(assignment)
            return
        context = self._context(assignment)
        var = self._ordering.choose(context)
        if first_descent:
            self.stats.first_descent_order.append(var)
        atoms = [r for r in self._relations if var in r.free_variables]
        vc = None
        if self._trace is not None:
            self._trace.record_decision(
                len(assignment),
                var,
                context.estimates,
                self._ordering.describe(context, var),
            )
            vc = self._trace.var(var)
            vc.fanout = max(vc.fanout, len(atoms))
        candidate = 0
        while True:
            candidate = self._leapfrog(atoms, var, candidate, vc)
            if candidate is None:
                return
            self.stats.attempts += 1
            if vc is not None:
                vc.candidates += 1
            if self.stats.attempts % _TIMEOUT_CHECK_INTERVAL == 0:
                if stopwatch.expired():
                    raise _Expired()
            ok = True
            bound_atoms = []
            for relation in atoms:
                bound_atoms.append(relation)
                if not relation.bind(var, candidate):
                    ok = False
                    break
            if vc is not None:
                if ok:
                    vc.bindings += 1
                else:
                    vc.failed_bindings += 1
            if ok:
                self.stats.bindings += 1
                assignment[var] = candidate
                yield from self._search(assignment, stopwatch, first_descent)
                first_descent = False
                del assignment[var]
                if (
                    self._limit is not None
                    and self.stats.solutions >= self._limit
                ):
                    for relation in reversed(bound_atoms):
                        relation.unbind(var)
                    return
            for relation in reversed(bound_atoms):
                relation.unbind(var)
            candidate += 1

    def _leapfrog(
        self,
        atoms: list[object],
        var: Var,
        lower: int,
        vc: object | None = None,
    ) -> int | None:
        """Smallest value ``>= lower`` admitted by every atom, or None."""
        if not atoms:
            raise QueryError(f"variable {var!r} occurs in no relation")
        if self._intersection == "leapfrog":
            return self._leapfrog_sorted(atoms, var, lower, vc)
        return self._leapfrog_roundrobin(atoms, var, lower, vc)

    def _leapfrog_roundrobin(
        self,
        atoms: list[object],
        var: Var,
        lower: int,
        vc: object | None = None,
    ) -> int | None:
        """Repeated passes over all atoms until a full pass agrees."""
        candidate = lower
        while True:
            advanced = False
            for relation in atoms:
                self.stats.leap_calls += 1
                if vc is not None:
                    vc.leaps += 1
                value = relation.leap(var, candidate)
                if value is None:
                    return None
                if value > candidate:
                    candidate = value
                    advanced = True
            if not advanced:
                return candidate

    def _leapfrog_sorted(
        self,
        atoms: list[object],
        var: Var,
        lower: int,
        vc: object | None = None,
    ) -> int | None:
        """Veldhuizen's leapfrog: keep the atoms' current candidates and
        repeatedly leap the *smallest* one to the largest, until all
        candidates coincide."""
        candidates: list[int] = []
        for relation in atoms:
            self.stats.leap_calls += 1
            if vc is not None:
                vc.leaps += 1
            value = relation.leap(var, lower)
            if value is None:
                return None
            candidates.append(value)
        if len(atoms) == 1:
            return candidates[0]
        while True:
            largest = max(candidates)
            smallest_idx = min(
                range(len(candidates)), key=candidates.__getitem__
            )
            if candidates[smallest_idx] == largest:
                return largest
            self.stats.leap_calls += 1
            if vc is not None:
                vc.leaps += 1
            value = atoms[smallest_idx].leap(var, largest)
            if value is None:
                return None
            candidates[smallest_idx] = value

    def _context(self, assignment: dict[Var, int]) -> OrderingContext:
        unbound = tuple(v for v in self._variables if v not in assignment)
        estimates: dict[Var, int] = {}
        for var in unbound:
            best = None
            for relation in self._relations:
                if var in relation.free_variables:
                    est = relation.estimate(var)
                    if best is None or est < best:
                        best = est
            estimates[var] = best if best is not None else 0
        edges: list[tuple[Var, Var]] = []
        unbound_set = set(unbound)
        for relation in self._relations:
            clause = getattr(relation, "clause", None)
            if clause is None:
                continue
            x, y = clause.x, clause.y
            if x in unbound_set and y in unbound_set:
                edges.append((x, y))
                if not hasattr(clause, "k"):
                    # Distance clauses are symmetric: both directions.
                    edges.append((y, x))
        return OrderingContext(
            unbound=unbound,
            estimates=estimates,
            lonely=self._lonely,
            constraint_edges=tuple(edges),
        )


class _Expired(Exception):
    """Internal signal: the evaluation's time budget ran out."""
