"""LTJ relation adapter for a triple pattern over the six-permutation
index — the classic "6 tries" backend of Sec. 2.2.

Functionally interchangeable with
:class:`~repro.ltj.triple_relation.RingTripleRelation`; used as the
triple backend of the classic-index ablation engine and as a live
cross-check of the Ring (both backends must enumerate identical
solutions). Costs six copies of the data where the Ring costs about
one (see ``tests/test_sixperm.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.sixperm import SixPermIndex
from repro.query.model import TriplePattern, Var, is_var
from repro.utils.errors import StructureError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import RelationCounters
    from repro.succinct.wavelet_tree import WaveletTree


class SixPermTripleRelation:
    """A triple pattern viewed as a leapfrog relation over six tries."""

    def __init__(self, index: SixPermIndex, pattern: TriplePattern) -> None:
        self._index = index
        self._pattern = pattern
        self.obs: RelationCounters | None = None
        """Optional :class:`repro.obs.trace.RelationCounters` (None when
        tracing is off)."""
        self._coords_of: dict[Var, tuple[str, ...]] = {}
        self._bound_values: dict[str, int] = {}
        for coord, term in zip("spo", pattern.terms):
            if is_var(term):
                self._coords_of.setdefault(term, ())
                self._coords_of[term] += (coord,)
            else:
                self._bound_values[coord] = term
        self._bound_vars: list[Var] = []
        self._count_cache: int | None = None

    @property
    def pattern(self) -> TriplePattern:
        return self._pattern

    def wavelet_trees(self) -> tuple[WaveletTree, ...]:
        """Engine memo hook: the six tries hold no wavelet trees."""
        return ()

    @property
    def variables(self) -> frozenset[Var]:
        return frozenset(self._coords_of)

    @property
    def free_variables(self) -> frozenset[Var]:
        return frozenset(
            v for v in self._coords_of if v not in self._bound_vars
        )

    def _count(self) -> int:
        if self._count_cache is None:
            self._count_cache = self._index.count(self._bound_values)
        return self._count_cache

    def is_empty(self) -> bool:
        return self._count() == 0

    def leap(self, var: Var, lower: int) -> int | None:
        coords = self._require_free(var)
        if self.obs is not None:
            self.obs.leaps += 1
        if self._count() == 0:
            return None
        if len(coords) == 1:
            return self._index.leap(self._bound_values, coords[0], lower)
        # Repeated variable: generate from the first coordinate, verify
        # by counting with all coordinates bound.
        candidate = lower
        while True:
            candidate = self._index.leap(
                self._bound_values, coords[0], candidate
            )
            if candidate is None:
                return None
            probe = dict(self._bound_values)
            for coord in coords:
                probe[coord] = candidate
            if self._index.count(probe) > 0:
                return candidate
            candidate += 1

    def bind(self, var: Var, value: int) -> bool:
        coords = self._require_free(var)
        for coord in coords:
            self._bound_values[coord] = value
        self._bound_vars.append(var)
        self._count_cache = None
        ok = self._count() > 0
        if self.obs is not None:
            if ok:
                self.obs.binds += 1
            else:
                self.obs.failed_binds += 1
        return ok

    def unbind(self, var: Var) -> None:
        if not self._bound_vars or self._bound_vars[-1] != var:
            raise StructureError(
                f"unbind({var!r}) does not match last bound variable"
            )
        for coord in self._coords_of[var]:
            del self._bound_values[coord]
        self._bound_vars.pop()
        self._count_cache = None
        if self.obs is not None:
            self.obs.unbinds += 1

    def estimate(self, var: Var) -> int:
        self._require_free(var)
        if self.obs is not None:
            self.obs.estimates += 1
        return self._count()

    def _require_free(self, var: Var) -> tuple[str, ...]:
        coords = self._coords_of.get(var)
        if coords is None:
            raise StructureError(f"{var!r} does not occur in {self._pattern!r}")
        if var in self._bound_vars:
            raise StructureError(f"{var!r} is already bound")
        return coords

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SixPermTripleRelation({self._pattern!r})"
