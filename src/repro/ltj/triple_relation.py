"""LTJ relation adapter for a triple pattern over the Ring.

Wraps a :class:`~repro.ring.pattern.RingPatternState`, translating
variable-level operations into coordinate-level ones. A variable may
occupy several coordinates of the same pattern (e.g. ``(?x, p, ?x)``);
``bind`` then descends once per coordinate and ``leap`` generates
candidates from one coordinate while probing the others.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.query.model import TriplePattern, Var, is_var
from repro.ring.index import PREV_COORD, RingIndex
from repro.ring.pattern import RingPatternState
from repro.utils.errors import StructureError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import RelationCounters
    from repro.succinct.wavelet_tree import WaveletTree


class RingTripleRelation:
    """A triple pattern viewed as a leapfrog relation over a Ring.

    ``exact_estimates`` switches :meth:`estimate` from the paper's
    range-size heuristic (Sec. 5: "we use the size e - b + 1 of the
    range") to the exact distinct-value count via ``range_symbols``
    (Sec. 2.3) where the free coordinate is the arc's stored column —
    an ablation of the cardinality-estimation choice.
    """

    def __init__(
        self,
        ring: RingIndex,
        pattern: TriplePattern,
        exact_estimates: bool = False,
    ) -> None:
        self._ring = ring
        self._exact_estimates = exact_estimates
        self._pattern = pattern
        self._coords_of: dict[Var, tuple[str, ...]] = {}
        constants: dict[str, int] = {}
        for coord, term in zip("spo", pattern.terms):
            if is_var(term):
                self._coords_of.setdefault(term, ())
                self._coords_of[term] += (coord,)
            else:
                constants[coord] = term
        self._state = RingPatternState(ring, constants)
        self._bound: list[Var] = []

    # ------------------------------------------------------------------
    @property
    def obs(self) -> RelationCounters | None:
        """Optional :class:`repro.obs.trace.RelationCounters` (None when
        tracing is off). Setting it also instruments the underlying
        :class:`RingPatternState`, whose detail counters record which
        Ring primitives answered each call."""
        return self._state.obs

    @obs.setter
    def obs(self, counters: RelationCounters | None) -> None:
        self._state.obs = counters

    @property
    def pattern(self) -> TriplePattern:
        return self._pattern

    def wavelet_trees(self) -> tuple[WaveletTree, ...]:
        """Trees touched by this relation (engine memo hook)."""
        return self._ring.wavelet_trees()

    @property
    def variables(self) -> frozenset[Var]:
        return frozenset(self._coords_of)

    @property
    def free_variables(self) -> frozenset[Var]:
        return frozenset(v for v in self._coords_of if v not in self._bound)

    def is_empty(self) -> bool:
        return self._state.is_empty()

    def count(self) -> int:
        """Number of triples matching the current partial binding."""
        return self._state.count()

    # ------------------------------------------------------------------
    def leap(self, var: Var, lower: int) -> int | None:
        coords = self._require_free(var)
        obs = self._state.obs
        if obs is not None:
            obs.leaps += 1
        if len(coords) == 1:
            return self._state.leap(coords[0], lower)
        # Repeated variable: generate candidates from the first free
        # coordinate and verify that binding *all* of them keeps the
        # pattern non-empty. Each verification is O(log) binds.
        candidate = lower
        while True:
            candidate = self._state.leap(coords[0], candidate)
            if candidate is None:
                return None
            probe = {coord: candidate for coord in coords}
            if self._state.probe(probe):
                return candidate
            candidate += 1

    def bind(self, var: Var, value: int) -> bool:
        coords = self._require_free(var)
        for coord in coords:
            self._state.bind(coord, value)
        self._bound.append(var)
        ok = not self._state.is_empty()
        obs = self._state.obs
        if obs is not None:
            if ok:
                obs.binds += 1
            else:
                obs.failed_binds += 1
        return ok

    def unbind(self, var: Var) -> None:
        if not self._bound or self._bound[-1] != var:
            raise StructureError(
                f"unbind({var!r}) does not match last bound variable"
            )
        for _ in self._coords_of[var]:
            self._state.unbind()
        self._bound.pop()
        if self._state.obs is not None:
            self._state.obs.unbinds += 1

    def estimate(self, var: Var) -> int:
        """Candidate-count estimate for ``var``.

        Default: the size of the pattern's current range (Sec. 5, "we
        use the size e - b + 1 of the range"). With ``exact_estimates``,
        the distinct-value count of the stored column is used when
        ``var`` sits exactly there (a single coordinate that is the
        stored column of the current arc); other positions keep the
        range-size bound, which remains a valid upper estimate.
        """
        coords = self._require_free(var)
        if self._state.obs is not None:
            self._state.obs.estimates += 1
        count = self._state.count()
        if not self._exact_estimates or len(coords) != 1:
            return count
        frame = self._state.frame
        if frame.arc_first is None or len(frame.bound) == 3:
            return count
        if coords[0] != PREV_COORD[frame.arc_first]:
            return count
        return self._ring.distinct_in_range(
            frame.arc_first, frame.lo, frame.hi, cap=count
        )

    def _require_free(self, var: Var) -> tuple[str, ...]:
        coords = self._coords_of.get(var)
        if coords is None:
            raise StructureError(f"{var!r} does not occur in {self._pattern!r}")
        if var in self._bound:
            raise StructureError(f"{var!r} is already bound")
        return coords

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingTripleRelation({self._pattern!r})"
