"""LTJ relation adapter for a range clause ``dist(x, y) <= d``.

Implements the Sec. 3.3 extension: binding either side of the clause
selects the distance-sorted region of that node in the sequence ``D``
and binary-searches the prefix within distance ``d``; the resulting
range participates in leapfrog intersections exactly like a ``S``/``S'``
range. Because metric distance is symmetric, both sides use the same
index.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.knn.distance_index import DistanceRangeIndex
from repro.query.model import DistClause, Var, is_var
from repro.utils.errors import StructureError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import RelationCounters
    from repro.succinct.wavelet_tree import WaveletTree


class DistanceClauseRelation:
    """A clause ``dist(x, y) <= d`` viewed as a leapfrog relation."""

    def __init__(self, index: DistanceRangeIndex, clause: DistClause) -> None:
        self._index = index
        self._clause = clause
        self._d = float(clause.d)
        self.obs: RelationCounters | None = None
        """Optional :class:`repro.obs.trace.RelationCounters`; detail
        keys name the distance-index primitive used per call."""
        self._values: dict[str, int | None] = {"x": None, "y": None}
        self._undo: list[str] = []
        self._failed_depth: int | None = None
        if not is_var(clause.x):
            self._values["x"] = clause.x
        if not is_var(clause.y):
            self._values["y"] = clause.y
        if self._values["x"] is not None and self._values["y"] is not None:
            if not index.contains(self._values["x"], self._values["y"], self._d):
                self._failed_depth = 0

    @property
    def clause(self) -> DistClause:
        return self._clause

    def wavelet_trees(self) -> tuple[WaveletTree, ...]:
        """Trees touched by this relation (engine memo hook)."""
        return (self._index.D,)

    @property
    def variables(self) -> frozenset[Var]:
        return frozenset(self._clause.variables)

    @property
    def free_variables(self) -> frozenset[Var]:
        bound = {self._term(side) for side in self._undo}
        return frozenset(v for v in self._clause.variables if v not in bound)

    def _term(self, side: str) -> Var | int:
        return self._clause.x if side == "x" else self._clause.y

    def is_empty(self) -> bool:
        return self._failed_depth is not None

    def _side_of(self, var: Var) -> str:
        if is_var(self._clause.x) and var == self._clause.x:
            return "x"
        if is_var(self._clause.y) and var == self._clause.y:
            return "y"
        raise StructureError(f"{var!r} does not occur in {self._clause!r}")

    def _other(self, side: str) -> str:
        return "y" if side == "x" else "x"

    def leap(self, var: Var, lower: int) -> int | None:
        if self._failed_depth is not None:
            return None
        side = self._side_of(var)
        if self._values[side] is not None:
            raise StructureError(f"{var!r} is already bound")
        anchor = self._values[self._other(side)]
        obs = self.obs
        if obs is not None:
            obs.leaps += 1
        if anchor is not None:
            if obs is not None:
                obs.bump("leap_within")
            return self._index.leap_within(anchor, self._d, lower)
        if obs is not None:
            obs.bump("leap_member")
        return self._index.next_member(lower)

    def bind(self, var: Var, value: int) -> bool:
        side = self._side_of(var)
        anchor = self._values[self._other(side)]
        self._values[side] = value
        self._undo.append(side)
        obs = self.obs
        if self._failed_depth is not None:
            if obs is not None:
                obs.failed_binds += 1
            return False
        if anchor is None:
            if obs is not None:
                obs.bump("count_within")
            ok = self._index.count_within(value, self._d) > 0
        else:
            if obs is not None:
                obs.bump("contains")
            ok = self._index.contains(anchor, value, self._d)
        if not ok:
            self._failed_depth = len(self._undo)
        if obs is not None:
            if ok:
                obs.binds += 1
            else:
                obs.failed_binds += 1
        return ok

    def unbind(self, var: Var) -> None:
        side = self._side_of(var)
        if not self._undo or self._undo[-1] != side:
            raise StructureError(f"unbind({var!r}) out of order")
        self._undo.pop()
        if self.obs is not None:
            self.obs.unbinds += 1
        self._values[side] = None
        if self._failed_depth is not None and self._failed_depth > len(self._undo):
            self._failed_depth = None

    def estimate(self, var: Var) -> int:
        """Per-binding candidate count (the data-dependent ``k`` the
        paper notes the algorithm knows and can use for ordering)."""
        if self.obs is not None:
            self.obs.estimates += 1
        side = self._side_of(var)
        anchor = self._values[self._other(side)]
        if anchor is not None:
            return self._index.count_within(anchor, self._d)
        return int(self._index.members.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DistanceClauseRelation({self._clause!r})"
