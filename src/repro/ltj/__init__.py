"""Leapfrog TrieJoin with similarity clauses (Secs. 2.2, 3.3, 4, 5).

The engine performs variable elimination: an ordering strategy picks the
next variable, a leapfrog intersection over all atoms containing it
enumerates its candidate values, and each candidate is bound in every
such atom before recursing. Atoms are :class:`LeapRelation` adapters:

* :class:`RingTripleRelation` — a triple pattern over the Ring;
* :class:`KnnClauseRelation` — a clause ``x <|_k y`` over the succinct
  K-NN structure (ranges in ``S``/``S'``);
* :class:`DistanceClauseRelation` — a clause ``dist(x, y) <= d`` over
  the distance-range index.

Ordering strategies implement Sec. 5: :class:`MinCandidatesOrdering`
(Ring-KNN-S), :class:`ConstraintAwareOrdering` (Ring-KNN), plus static
topological and fixed orders used by tests and ablations.
"""

from repro.ltj.distance_relation import DistanceClauseRelation
from repro.ltj.engine import LTJEngine
from repro.ltj.knn_relation import KnnClauseRelation
from repro.ltj.ordering import (
    ConstraintAwareOrdering,
    FixedOrdering,
    MinCandidatesOrdering,
    OrderingStrategy,
    TopologicalOrdering,
)
from repro.ltj.relation import LeapRelation
from repro.ltj.sixperm_relation import SixPermTripleRelation
from repro.ltj.stats import EvaluationStats
from repro.ltj.triple_relation import RingTripleRelation

__all__ = [
    "LeapRelation",
    "RingTripleRelation",
    "SixPermTripleRelation",
    "KnnClauseRelation",
    "DistanceClauseRelation",
    "LTJEngine",
    "EvaluationStats",
    "OrderingStrategy",
    "MinCandidatesOrdering",
    "ConstraintAwareOrdering",
    "TopologicalOrdering",
    "FixedOrdering",
]
