"""The relation interface consumed by the LTJ engine.

Every atom of an extended BGP (triple pattern, ``x <|_k y`` clause,
``dist(x, y) <= d`` clause) is wrapped in a :class:`LeapRelation`. The
engine only ever calls the five methods below, so adding new atom kinds
(as Sec. 7 of the paper envisions) means writing one more adapter.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.query.model import Var

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.succinct.wavelet_tree import WaveletTree


class LeapRelation(abc.ABC):
    """Backtrackable adapter exposing leapfrog primitives for one atom."""

    @property
    @abc.abstractmethod
    def variables(self) -> frozenset[Var]:
        """All variables mentioned by the atom."""

    @property
    @abc.abstractmethod
    def free_variables(self) -> frozenset[Var]:
        """Variables not yet bound in this relation."""

    @abc.abstractmethod
    def leap(self, var: Var, lower: int) -> int | None:
        """Smallest candidate value ``>= lower`` for ``var``, or ``None``.

        ``var`` must be free. The returned value ``c`` must be admissible
        for this atom alone: binding ``var := c`` leaves the atom
        non-empty.
        """

    @abc.abstractmethod
    def bind(self, var: Var, value: int) -> bool:
        """Bind a free variable, returning whether the atom stays
        non-empty. The state is pushed even when the result is ``False``
        so that :meth:`unbind` stays symmetric."""

    @abc.abstractmethod
    def unbind(self, var: Var) -> None:
        """Undo the most recent :meth:`bind` of ``var``."""

    @abc.abstractmethod
    def estimate(self, var: Var) -> int:
        """Upper bound on the number of candidates for ``var`` under the
        current partial binding — the quantity behind the paper's
        ``l_x`` (Def. 10 / Sec. 5): triple patterns answer their current
        range size, similarity clauses their exact range size in
        ``S``/``S'``."""

    def is_empty(self) -> bool:
        """Whether the atom admits no completion (default: never)."""
        return False

    def wavelet_trees(self) -> tuple[WaveletTree, ...]:
        """Wavelet trees this atom's leaps traverse (default: none).

        The engine scopes per-query memo tables to these trees and the
        tracer attaches op counters to them, so adapters backed by
        succinct structures must override this (RPL005 enforces it);
        returning ``()`` opts out of both, which is correct only when
        the atom really owns no trees (e.g. the six-permutation
        backend)."""
        return ()
