"""Instrumentation collected during one query evaluation.

The figures of Sec. 6 need more than wall-clock time: the number of
variable eliminations (the quantity the wco bounds constrain), whether
the run timed out, and where in the elimination order the first
similarity-involved variable was bound (the "36% vs 68%" statistic of
the Q1b discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.model import Var


@dataclass
class EvaluationStats:
    """Counters filled in by :class:`~repro.ltj.engine.LTJEngine`."""

    solutions: int = 0
    """Number of solutions enumerated."""

    bindings: int = 0
    """Successful variable bindings (eliminations) performed."""

    attempts: int = 0
    """Candidate values produced by leapfrog intersections (>= bindings)."""

    leap_calls: int = 0
    """Individual ``leap`` calls issued to relations."""

    elapsed: float = 0.0
    """Wall-clock seconds for the evaluation."""

    timed_out: bool = False
    """Whether the time budget expired before exhausting the search."""

    first_descent_order: list[Var] = field(default_factory=list)
    """Variables in the order chosen along the first root-to-leaf branch."""

    sim_variables: frozenset[Var] = frozenset()
    """Variables involved in similarity or distance clauses."""

    @property
    def first_sim_bind_fraction(self) -> float | None:
        """Fraction of variables processed before the first similarity
        variable is bound, on the first descent (0.0 = bound first).

        ``None`` when the query has no similarity variables or the first
        descent never reached one.
        """
        if not self.sim_variables or not self.first_descent_order:
            return None
        total = len(self.first_descent_order)
        for position, var in enumerate(self.first_descent_order):
            if var in self.sim_variables:
                return position / total
        return None
