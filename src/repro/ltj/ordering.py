"""Variable-ordering strategies (Secs. 4 and 5 of the paper).

All strategies are *adaptive*: :meth:`OrderingStrategy.choose` is called
once per elimination step with the current state, so "after binding the
first variable x with each value c, the next variable to bind may differ
on each Q[x -> c]" (Sec. 5).

* :class:`MinCandidatesOrdering` — the plain Ring rule used by
  **Ring-KNN-S** (Sec. 5.1): minimum ``l_x``, lonely variables last.
* :class:`ConstraintAwareOrdering` — **Ring-KNN** (Sec. 5.2): variables
  that are the target of a constraint edge between two unbound variables
  are marked not-ready; choose the unmarked variable of minimum ``l_x``
  if any exists, otherwise fall back to the marked ones. This implements
  the C-minimal rule of Sec. 4.3, since a node is C-minimal exactly when
  it has no incoming constraint edge among unbound variables.
* :class:`TopologicalOrdering` — a static topological order of the
  constraint graph (the wco recipe of Thm. 2 for acyclic constraints).
* :class:`FixedOrdering` — a user-supplied total order (tests, ablation).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.query.model import Var
from repro.utils.errors import QueryError


@dataclass(frozen=True)
class OrderingContext:
    """Snapshot handed to a strategy at each elimination step."""

    unbound: tuple[Var, ...]
    """Variables still to eliminate, in stable query order."""

    estimates: dict[Var, int]
    """``l_x`` per unbound variable: min candidate-count over its atoms."""

    lonely: frozenset[Var]
    """Variables appearing in a single atom (bound last, Sec. 5)."""

    constraint_edges: tuple[tuple[Var, Var], ...]
    """Edges ``x -> y`` of the *current* constraint graph: one per clause
    ``x <|_k y`` whose two sides are both unbound variables (distance
    clauses contribute both directions)."""


class OrderingStrategy(abc.ABC):
    """Strategy deciding the next variable to eliminate."""

    @abc.abstractmethod
    def choose(self, context: OrderingContext) -> Var:
        """Pick the next variable among ``context.unbound``."""

    def describe(self, context: OrderingContext, chosen: Var) -> str:
        """Why :meth:`choose` picked ``chosen`` (for query traces).

        Only called when tracing is on, so subclasses may recompute
        cheap classification work here instead of threading it out of
        :meth:`choose`.
        """
        parts = [f"l_x={context.estimates.get(chosen, 0)}"]
        if chosen in context.lonely:
            parts.append("lonely (all regular variables bound)")
        return "; ".join(parts)

    @staticmethod
    def _min_estimate(candidates: list[Var], context: OrderingContext) -> Var:
        """Smallest ``l_x``; ties broken by position in ``unbound``."""
        return min(candidates, key=lambda v: (context.estimates[v],
                                              context.unbound.index(v)))


class MinCandidatesOrdering(OrderingStrategy):
    """Adaptive min-``l_x`` with lonely variables last (Ring-KNN-S)."""

    def choose(self, context: OrderingContext) -> Var:
        regular = [v for v in context.unbound if v not in context.lonely]
        if regular:
            return self._min_estimate(regular, context)
        return self._min_estimate(list(context.unbound), context)

    def describe(self, context: OrderingContext, chosen: Var) -> str:
        base = super().describe(context, chosen)
        return f"min-l_x (unrestricted): {base}"


class ConstraintAwareOrdering(OrderingStrategy):
    """Ring-KNN: prefer variables without incoming constraint edges.

    Following Sec. 5.2, at each step the targets of the current
    constraint edges are marked not-ready; the unmarked non-lonely
    variable of minimum ``l_x`` is chosen if one exists, otherwise the
    marked non-lonely minimum, with lonely variables still last.
    """

    def choose(self, context: OrderingContext) -> Var:
        marked = {y for _x, y in context.constraint_edges}
        regular = [v for v in context.unbound if v not in context.lonely]
        pool = regular if regular else list(context.unbound)
        unmarked = [v for v in pool if v not in marked]
        if unmarked:
            return self._min_estimate(unmarked, context)
        return self._min_estimate(pool, context)

    def describe(self, context: OrderingContext, chosen: Var) -> str:
        marked = {y for _x, y in context.constraint_edges}
        base = super().describe(context, chosen)
        if chosen in marked:
            return (
                f"constraint-aware: {base}; constraint target chosen "
                "(every candidate is a target)"
            )
        if marked:
            skipped = ", ".join(sorted(v.name for v in marked))
            return f"constraint-aware: {base}; targets deferred: {skipped}"
        return f"constraint-aware: {base}; no unresolved constraint edges"


class TopologicalOrdering(OrderingStrategy):
    """Static topological order over the *initial* constraint graph.

    This is the recipe of Thm. 2: on acyclic constraint graphs,
    eliminating variables in topological order yields wco time. Within a
    topological "layer" the adaptive min-``l_x`` tie-break is still used;
    lonely variables go last. Raises on construction if the constraint
    graph has a cycle.
    """

    def __init__(self, edges: list[tuple[Var, Var]]) -> None:
        self._edges = tuple(edges)
        # Kahn's algorithm to verify acyclicity once.
        nodes = {v for edge in edges for v in edge}
        indeg = {v: 0 for v in sorted(nodes, key=lambda u: u.name)}
        for _x, y in edges:
            indeg[y] += 1
        frontier = [v for v, d in indeg.items() if d == 0]
        seen = 0
        while frontier:
            node = frontier.pop()
            seen += 1
            for x, y in edges:
                if x == node:
                    indeg[y] -= 1
                    if indeg[y] == 0:
                        frontier.append(y)
        if seen != len(nodes):
            raise QueryError(
                "TopologicalOrdering requires an acyclic constraint graph"
            )

    def choose(self, context: OrderingContext) -> Var:
        unbound = set(context.unbound)
        blocked = {
            y for x, y in self._edges if x in unbound and y in unbound
        }
        regular = [v for v in context.unbound if v not in context.lonely]
        pool = regular if regular else list(context.unbound)
        ready = [v for v in pool if v not in blocked]
        if not ready:  # pragma: no cover - impossible for acyclic graphs
            ready = pool
        return self._min_estimate(ready, context)


class FixedOrdering(OrderingStrategy):
    """Eliminate variables in a caller-supplied total order."""

    def __init__(self, order: list[Var] | tuple[Var, ...]) -> None:
        self._order = tuple(order)

    def choose(self, context: OrderingContext) -> Var:
        for var in self._order:
            if var in context.unbound:
                return var
        raise QueryError(
            f"fixed order {self._order!r} does not cover {context.unbound!r}"
        )
