"""LTJ relation adapter for a similarity clause ``x <|_k y``.

This realizes Sec. 3.3: the clause behaves exactly as if the relation
``kNN(x, y)`` had been materialized with tries ``T_xy`` and ``T_yx``,
but the trie nodes are simulated as ranges of the wavelet trees over
``S`` (when ``x`` is bound first) or ``S'`` (when ``y`` is bound first),
per Lemma 2. Leapfrog intersections run through ``range_next_value`` on
those ranges, never materializing anything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.knn.succinct import KnnRing
from repro.query.model import SimClause, Var, is_var
from repro.utils.errors import StructureError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import RelationCounters
    from repro.succinct.wavelet_tree import WaveletTree


class KnnClauseRelation:
    """A clause ``x <|_k y`` viewed as a leapfrog relation."""

    def __init__(self, knn: KnnRing, clause: SimClause) -> None:
        self._knn = knn
        self._clause = clause
        self._k = clause.k
        self.obs: RelationCounters | None = None
        """Optional :class:`repro.obs.trace.RelationCounters`; detail
        keys name the kNN-ring primitive used per call (e.g.
        ``leap_forward_S`` for a descent of the simulated trie T_xy)."""
        # Current bindings of the two sides (None = unbound). Constants
        # are bound immediately and never pushed on the undo stack.
        self._x_value: int | None = None
        self._y_value: int | None = None
        self._undo: list[str] = []
        self._failed_depth: int | None = None
        if not is_var(clause.x):
            self._x_value = clause.x
        if not is_var(clause.y):
            self._y_value = clause.y
        if self._x_value is not None and self._y_value is not None:
            # Fully constant clause: a static filter.
            if not knn.contains(self._x_value, self._y_value, self._k):
                self._failed_depth = 0

    # ------------------------------------------------------------------
    @property
    def clause(self) -> SimClause:
        return self._clause

    def wavelet_trees(self) -> tuple[WaveletTree, WaveletTree]:
        """Trees touched by this relation (engine memo hook)."""
        return self._knn.wavelet_trees()

    @property
    def variables(self) -> frozenset[Var]:
        return frozenset(self._clause.variables)

    @property
    def free_variables(self) -> frozenset[Var]:
        free = set()
        if is_var(self._clause.x) and self._clause.x not in self._bound_vars():
            free.add(self._clause.x)
        if is_var(self._clause.y) and self._clause.y not in self._bound_vars():
            free.add(self._clause.y)
        return frozenset(free)

    def _bound_vars(self) -> set[Var]:
        return {
            self._clause.x if side == "x" else self._clause.y
            for side in self._undo
        }

    def is_empty(self) -> bool:
        return self._failed_depth is not None

    def _side_of(self, var: Var) -> str:
        if is_var(self._clause.x) and var == self._clause.x:
            return "x"
        if is_var(self._clause.y) and var == self._clause.y:
            return "y"
        raise StructureError(f"{var!r} does not occur in {self._clause!r}")

    # ------------------------------------------------------------------
    def leap(self, var: Var, lower: int) -> int | None:
        if self._failed_depth is not None:
            return None
        side = self._side_of(var)
        if side == "x" and self._x_value is not None:
            raise StructureError(f"{var!r} is already bound")
        if side == "y" and self._y_value is not None:
            raise StructureError(f"{var!r} is already bound")
        obs = self.obs
        if obs is not None:
            obs.leaps += 1
        if side == "y":
            if self._x_value is not None:
                # Descend T_xy: range S[(x-1)K+1 .. (x-1)K+k] (Lemma 2b).
                if obs is not None:
                    obs.bump("leap_forward_S")
                return self._knn.leap_forward(self._x_value, self._k, lower)
            # Root of T_yx: any member with a non-empty reverse range.
            if obs is not None:
                obs.bump("leap_root_reverse")
            return self._knn.next_reverse_nonempty(self._k, lower)
        if self._y_value is not None:
            # Descend T_yx: range S'[p_y(1) .. p_y(k+1)-1] (Lemma 2c).
            if obs is not None:
                obs.bump("leap_backward_Sprime")
            return self._knn.leap_backward(self._y_value, self._k, lower)
        # Root of T_xy: every member has k forward neighbors.
        if obs is not None:
            obs.bump("leap_root_member")
        return self._knn.next_member(lower)

    def bind(self, var: Var, value: int) -> bool:
        side = self._side_of(var)
        if self._failed_depth is not None:
            # Already failed; push a no-op frame to keep unbind symmetric.
            self._undo.append(side)
            self._set(side, value)
            if self.obs is not None:
                self.obs.failed_binds += 1
            return False
        other_bound = self._y_value if side == "x" else self._x_value
        self._set(side, value)
        self._undo.append(side)
        obs = self.obs
        ok: bool
        if other_bound is None:
            # First side bound: non-emptiness = the range is non-empty.
            if side == "x":
                if obs is not None:
                    obs.bump("count_forward")
                ok = self._knn.forward_count(value, self._k) > 0
            else:
                if obs is not None:
                    obs.bump("count_backward")
                ok = self._knn.backward_count(value, self._k) > 0
        else:
            if obs is not None:
                obs.bump("contains")
            ok = self._knn.contains(
                self._x_value, self._y_value, self._k  # type: ignore[arg-type]
            )
        if not ok:
            self._failed_depth = len(self._undo)
        if obs is not None:
            if ok:
                obs.binds += 1
            else:
                obs.failed_binds += 1
        return ok

    def unbind(self, var: Var) -> None:
        side = self._side_of(var)
        if not self._undo or self._undo[-1] != side:
            raise StructureError(f"unbind({var!r}) out of order")
        self._undo.pop()
        if self.obs is not None:
            self.obs.unbinds += 1
        self._set(side, None)
        if self._failed_depth is not None and self._failed_depth > len(self._undo):
            self._failed_depth = None

    def _set(self, side: str, value: int | None) -> None:
        if side == "x":
            self._x_value = value
        else:
            self._y_value = value

    def estimate(self, var: Var) -> int:
        """Exact candidate counts from the S/S' ranges (Sec. 5): ``k``
        when ``x`` is bound, the reverse-range size when ``y`` is bound,
        the member count when neither is."""
        if self.obs is not None:
            self.obs.estimates += 1
        side = self._side_of(var)
        if side == "y":
            if self._x_value is not None:
                return self._knn.forward_count(self._x_value, self._k)
            return self._knn.num_members
        if self._y_value is not None:
            return self._knn.backward_count(self._y_value, self._k)
        return self._knn.num_members

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KnnClauseRelation({self._clause!r})"
