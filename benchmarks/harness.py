"""Repo-level entry point for the benchmark-regression harness.

The implementation lives in :mod:`repro.bench.harness` (so the ``repro
bench`` CLI subcommand can import it from an installed package); this
wrapper keeps the harness runnable straight from a checkout::

    PYTHONPATH=src python benchmarks/harness.py --out BENCH_$(date +%F).json
    PYTHONPATH=src python benchmarks/harness.py --diff BENCH_a.json BENCH_b.json

which is equivalent to ``repro bench ...``.
"""

from __future__ import annotations

import sys

from repro.bench.harness import (  # noqa: F401  (re-exported for importers)
    BENCH_VERSION,
    BenchConfig,
    BenchDiff,
    calibrate,
    default_filename,
    diff_bench,
    format_diff,
    load_bench,
    run_bench,
    run_micro,
    write_bench,
)


def main(argv: list[str] | None = None) -> int:
    from repro.cli import main as cli_main

    args = list(sys.argv[1:] if argv is None else argv)
    return cli_main(["bench", *args])


if __name__ == "__main__":
    sys.exit(main())
