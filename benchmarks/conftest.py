"""Shared benchmark fixtures: one benchmark-scale database + workload.

The scale is chosen so the whole suite finishes in minutes on a laptop
while still exhibiting the paper's qualitative shapes (see DESIGN.md's
substitution table). Result tables are written to
``benchmarks/results/*.txt`` as each harness completes.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.datasets.wikimedia import WikimediaConfig, generate_benchmark
from repro.datasets.workload import WorkloadConfig, generate_workload
from repro.engines.database import GraphDatabase

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Per-query time budget (the paper uses 600 s at its scale).
QUERY_TIMEOUT = 15.0


def write_results(name: str, text: str) -> None:
    """Persist a paper-style table produced during the benchmarks."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def wikimedia_bench():
    return generate_benchmark(
        WikimediaConfig(
            n_entities=600,
            n_images=250,
            n_misc_triples=4000,
            K=16,
            descriptor_dim=8,
            n_clusters=10,
            seed=7,
        )
    )


@pytest.fixture(scope="session")
def database(wikimedia_bench) -> GraphDatabase:
    return GraphDatabase(wikimedia_bench.graph, wikimedia_bench.knn_graph)


@pytest.fixture(scope="session")
def workload(wikimedia_bench):
    return generate_workload(
        wikimedia_bench,
        WorkloadConfig(
            k=10, n_q1=4, n_q2=2, n_q3=4, n_q4=3, n_q5=4, seed=2
        ),
    )
