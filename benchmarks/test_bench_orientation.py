"""Sec. 7 orientation experiment (E11): the directed rewrite of
symmetric similarity queries is at least as efficient per delivered
tuple and keeps high answer fidelity (its answers are a superset
containing every exact answer)."""

from __future__ import annotations

from benchmarks.conftest import QUERY_TIMEOUT, write_results
from repro.experiments.orientation import (
    ORIENTATION_HEADERS,
    run_orientation_comparison,
)
from repro.experiments.report import format_table


def test_orientation_tradeoff(benchmark, database, workload):
    queries = workload["Q1b"] + workload["Q2b"]
    report = benchmark.pedantic(
        lambda: run_orientation_comparison(
            database, queries, timeout=QUERY_TIMEOUT
        ),
        rounds=1,
        iterations=1,
    )
    write_results(
        "orientation",
        format_table(
            ORIENTATION_HEADERS,
            report.rows(),
            title=(
                "Sec 7: symmetric queries vs system-oriented (acyclic) "
                "rewrites — seconds and answer precision"
            ),
        ),
    )
    # Recall is 1.0 by construction; precision should stay meaningful.
    # The rewrite delivers a superset of answers, so raw time is not
    # comparable — per delivered tuple the acyclic plans must not lose.
    assert report.mean_precision > 0.2
    assert report.directed_ms_per_tuple <= report.symmetric_ms_per_tuple * 1.25
    benchmark.extra_info["per_tuple_speedup"] = report.per_tuple_speedup
    benchmark.extra_info["precision"] = report.mean_precision
