"""Warm-hit benchmark of the cross-query result cache (:mod:`repro.cache`).

Three serial ``auto`` passes over the full benchmark workload: a
**cold** reference (no cache), a **fill** pass against a fresh
:class:`QueryCache` (evaluation plus the admission copy), and a
**warm** pass that replays the same batch against the populated cache —
the pass a server's repeat traffic pays. The warm pass must return
solutions byte-identical to the cold reference (values *and*
enumeration order), and — when no query timed out — clear a
``MIN_WARM_HIT_SPEEDUP`` floor over the cold pass: a cache hit replays
a packed solution matrix instead of re-running leapfrog, so anything
less means the admission copy or the probe path has regressed.

The hit-rate table is written to ``benchmarks/results/cache_hit_rate.txt``
(uploaded as the CI ``cache`` job's artifact).
"""

from __future__ import annotations

import time

from benchmarks.conftest import QUERY_TIMEOUT, write_results
from repro.cache import QueryCache
from repro.engines.auto import AutoEngine

#: Floor on the warm-pass speedup over the cold pass when every query
#: completed. Retrieval is a matrix unpack; 5x is conservative — the
#: Figure-2-scale acceptance run measures orders of magnitude more.
MIN_WARM_HIT_SPEEDUP = 5.0

_collected: dict[str, dict] = {}


def _flat_queries(workload):
    return [
        query
        for _family, family_queries in sorted(workload.items())
        for query in family_queries
    ]


def _sweep(engine, queries):
    started = time.perf_counter()
    results = [
        engine.evaluate(query, timeout=QUERY_TIMEOUT) for query in queries
    ]
    return {
        "queries": len(queries),
        "total_s": time.perf_counter() - started,
        "solutions": sum(len(r.solutions) for r in results),
        "timeouts": sum(int(r.timed_out) for r in results),
        "cached": sum(int(r.cached) for r in results),
    }, results


def test_cache_cold_reference(benchmark, database, workload):
    queries = _flat_queries(workload)
    engine = AutoEngine(database)
    _sweep(engine, queries)  # warm the parent-side wavelet memos
    entry, results = benchmark.pedantic(
        lambda: _sweep(engine, queries), rounds=1, iterations=1
    )
    benchmark.extra_info.update(entry)
    _collected["cold"] = entry
    _collected["cold_results"] = {"results": results}


def test_cache_fill_then_warm_hits(benchmark, database, workload):
    queries = _flat_queries(workload)
    cold = _collected.get("cold")
    cold_results = _collected.get("cold_results", {}).get("results")
    if cold is None:
        cold, cold_results = _sweep(AutoEngine(database), queries)
        _collected["cold"] = cold

    cache = QueryCache()
    engine = AutoEngine(database, cache=cache)
    fill, _ = _sweep(engine, queries)
    warm, warm_results = benchmark.pedantic(
        lambda: _sweep(engine, queries), rounds=1, iterations=1
    )

    # Byte-identical contract: warm hits replay the cold solutions in
    # the cold enumeration order (skip queries that timed out anywhere).
    for query, cold_result, warm_result in zip(
        queries, cold_results, warm_results
    ):
        if cold_result.timed_out or warm_result.timed_out:
            continue
        assert warm_result.solutions == cold_result.solutions, (
            f"cached evaluation changed the solutions of {query}"
        )

    stats = cache.stats()
    probes = stats["hits"] + stats["misses"]
    warm["hit_rate"] = stats["hits"] / probes if probes else 0.0
    warm["speedup_vs_cold"] = (
        cold["total_s"] / warm["total_s"] if warm["total_s"] > 0 else 0.0
    )
    warm["fill_total_s"] = fill["total_s"]
    warm["cache_bytes"] = stats["bytes"]
    benchmark.extra_info.update(warm)
    _collected["warm"] = warm

    if not cold["timeouts"] and not warm["timeouts"]:
        # Every completed query is admissible at this scale: the warm
        # pass must be all hits and far cheaper than evaluation.
        assert warm["cached"] == len(queries), (
            f"only {warm['cached']}/{len(queries)} warm evaluations came "
            "from the cache"
        )
        assert warm["speedup_vs_cold"] >= MIN_WARM_HIT_SPEEDUP, (
            f"warm pass reached only {warm['speedup_vs_cold']:.1f}x over "
            f"cold (floor {MIN_WARM_HIT_SPEEDUP}x)"
        )


def test_cache_report():
    lines = ["cross-query cache (repro.cache) warm-hit benchmark"]
    cold = _collected.get("cold")
    if cold is not None:
        lines.append(
            f"  cold:  {cold['total_s']:.3f} s over {cold['queries']} "
            f"queries ({cold['solutions']} solutions, "
            f"{cold['timeouts']} timeouts)"
        )
    warm = _collected.get("warm")
    if warm is not None:
        lines.append(f"  fill:  {warm['fill_total_s']:.3f} s")
        lines.append(
            f"  warm:  {warm['total_s']:.3f} s "
            f"({warm['cached']}/{warm['queries']} hits, "
            f"hit rate {warm['hit_rate']:.1%}, "
            f"{warm['speedup_vs_cold']:.1f}x vs cold, "
            f"{warm['cache_bytes']} cached bytes)"
        )
    write_results("cache_hit_rate", "\n".join(lines))
