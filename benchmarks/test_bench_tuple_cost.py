"""Per-delivered-tuple cost (E13): Sec. 7's "cost per delivered tuple
is 2-5 times higher with the symmetric operator". The asserted shape:
the symmetric family costs strictly more per tuple on both Ring
engines (our pure-Python constants put the ratio below the paper's
C++ 2-5x band but on the same side of 1)."""

from __future__ import annotations

from benchmarks.conftest import QUERY_TIMEOUT, write_results
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.experiments.report import format_table
from repro.experiments.tuple_cost import TUPLE_COST_HEADERS, run_tuple_cost


def test_symmetric_tuple_cost_higher(benchmark, database, workload):
    engines = [RingKnnEngine(database), RingKnnSEngine(database)]
    report = benchmark.pedantic(
        lambda: run_tuple_cost(
            database,
            workload["Q1"],
            workload["Q1b"],
            engines,
            timeout=QUERY_TIMEOUT,
        ),
        rounds=1,
        iterations=1,
    )
    write_results(
        "tuple_cost",
        format_table(
            TUPLE_COST_HEADERS,
            report.table_rows(),
            title="Sec 7: cost per delivered tuple, x <|_k y vs x ~_k y",
        ),
    )
    for engine in ("ring-knn", "ring-knn-s"):
        ratio = report.ratio(engine)
        benchmark.extra_info[f"{engine}_ratio"] = ratio
        assert ratio > 1.0, (
            f"{engine}: symmetric per-tuple cost should exceed the "
            f"asymmetric one; got ratio {ratio:.2f}"
        )
