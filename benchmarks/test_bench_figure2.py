"""Figure 2 regeneration (E1-E5, E9): query-time distributions per
family for Baseline, Ring-KNN, and Ring-KNN-S.

One pytest-benchmark entry per (family, engine) measures the family's
total evaluation time; the paper-style per-family mean/median table is
written to ``benchmarks/results/figure2.txt`` at the end. Expected
shapes (Sec. 6.2): the baseline is slowest everywhere; the gap is
moderate on Q1/Q1b, grows on Q2/Q3, and is largest on Q4/Q5; Ring-KNN-S
leads on the simple Q1 family while Ring-KNN is more stable and wins the
densely-constrained families.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import QUERY_TIMEOUT, write_results
from repro.engines.baseline import BaselineEngine
from repro.engines.ring_knn import RingKnnEngine, RingKnnSEngine
from repro.experiments.figure2 import (
    FIGURE2_HEADERS,
    figure2_rows,
    run_figure2,
)
from repro.experiments.report import format_table

FAMILIES = ["Q1", "Q1b", "Q2", "Q2b", "Q2t", "Q3", "Q4", "Q5"]
ENGINES = {
    "baseline": BaselineEngine,
    "ring-knn": RingKnnEngine,
    "ring-knn-s": RingKnnSEngine,
}

# Collected across benchmark entries so the final table covers all runs.
_collected: dict[str, dict] = {}


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("engine_name", list(ENGINES))
def test_fig2_family(benchmark, database, workload, family, engine_name):
    engine = ENGINES[engine_name](database)
    queries = workload[family]

    def run_family():
        return run_figure2(
            database, {family: queries}, [engine], timeout=QUERY_TIMEOUT
        )

    results = benchmark.pedantic(run_family, rounds=1, iterations=1)
    series = results[family].series[engine.name]
    benchmark.extra_info["mean_s"] = series.mean
    benchmark.extra_info["median_s"] = series.median
    benchmark.extra_info["solutions"] = int(sum(series.solutions))
    benchmark.extra_info["timeouts"] = series.timeouts
    _collected.setdefault(family, {})[engine.name] = series


def test_fig2_report(benchmark, database, workload):
    """Render the aggregated Figure-2 table (depends on the runs above
    having populated the collection; falls back to a fresh run)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_collected) < len(FAMILIES):
        engines = [cls(database) for cls in ENGINES.values()]
        results = run_figure2(database, workload, engines, timeout=QUERY_TIMEOUT)
        for family, fr in results.items():
            _collected[family] = fr.series
    from repro.experiments.figure2 import FamilyResult

    results = {
        family: FamilyResult(family, series)
        for family, series in _collected.items()
    }
    from repro.experiments.violin import render_family_violins

    table = format_table(
        FIGURE2_HEADERS,
        figure2_rows(results),
        title="Figure 2: query time distribution per family (seconds)",
    )
    write_results("figure2", table)
    write_results("figure2_violins", render_family_violins(results))

    # Paper-shape assertions (mean times, Sec. 6.2). On the simple Q1
    # families the paper's decisive claim is about Ring-KNN-S (~60%
    # faster; Ring-KNN is only ~10-15% ahead, within noise at this
    # sample size); on the densely-constrained families the decisive
    # claim is about Ring-KNN.
    for family in ("Q1", "Q1b"):
        series = results[family].series
        if "baseline" not in series:
            continue
        base = series["baseline"].mean
        s_mean = series["ring-knn-s"].mean
        assert s_mean <= base * 1.25, (
            f"{family}: Ring-KNN-S ({s_mean:.2f}s) should beat the "
            f"baseline ({base:.2f}s)"
        )
    for family in ("Q2", "Q2b", "Q2t", "Q3", "Q4", "Q5"):
        series = results[family].series
        if "baseline" not in series:
            continue
        base = series["baseline"].mean
        knn = series["ring-knn"].mean
        assert knn <= base * 1.25, (
            f"{family}: Ring-KNN ({knn:.2f}s) should not lose to the "
            f"baseline ({base:.2f}s)"
        )
    # The gap grows with constraint connectivity: Q5's speedup should
    # exceed Q1's.
    q1 = results["Q1"]
    q5 = results["Q5"]
    if "baseline" in q1.series and "baseline" in q5.series:
        assert q5.speedup("ring-knn") >= q1.speedup("ring-knn")


def test_fig2_bind_position(benchmark, database, workload):
    """E9: Ring-KNN-S binds the first similarity variable earlier in the
    elimination order than Ring-KNN on the symmetric Q1b family (the
    paper reports 36% vs 68% of the variables processed)."""
    engines = [RingKnnEngine(database), RingKnnSEngine(database)]
    results = benchmark.pedantic(
        lambda: run_figure2(
            database, {"Q1b": workload["Q1b"]}, engines, timeout=QUERY_TIMEOUT
        ),
        rounds=1,
        iterations=1,
    )
    series = results["Q1b"].series
    s_pos = series["ring-knn-s"].mean_sim_bind_fraction
    knn_pos = series["ring-knn"].mean_sim_bind_fraction
    assert s_pos is not None and knn_pos is not None
    write_results(
        "bind_position",
        format_table(
            ["engine", "mean first-sim-bind position (fraction of vars)"],
            [["ring-knn-s", round(s_pos, 3)], ["ring-knn", round(knn_pos, 3)]],
            title="Sec 6.2 (Q1b): position of first similarity-variable binding",
        ),
    )
    assert s_pos <= knn_pos, (s_pos, knn_pos)
