"""Materialization-cost comparison (E7): the Sec. 3.2 motivation.

Paper numbers: extracting + sorting the k = 50 prefix of the K-NN graph
costs 260 s *before* query processing starts, while the integrated
index answers entire queries in as little as 1.3 s. The shape asserted
here: on selective queries, the strawman's setup phase alone exceeds
the integrated engine's total time by a large factor, because setup is
O(k n) regardless of the query while the integrated engine only touches
what the query needs.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_results
from repro.datasets.wikimedia import WikimediaConfig, generate_benchmark
from repro.engines.database import GraphDatabase
from repro.experiments.materialization import (
    MATERIALIZATION_HEADERS,
    run_materialization_comparison,
)
from repro.experiments.report import format_table
from repro.query.parser import parse_query


def _selective_queries(bench, k: int, count: int):
    """Constant-anchored queries: cheap for the integrated engine."""
    rng = np.random.default_rng(3)
    queries = []
    for img in rng.choice(bench.image_ids, size=count, replace=False):
        img = int(img)
        queries.append(
            parse_query(
                f"(?e, {bench.depicts}, {img}) . knn({img}, ?y, {k}) "
                f". (?e2, {bench.depicts}, ?y)"
            )
        )
    return queries


def test_materialization_vs_integrated(benchmark):
    # A K-NN-heavy instance: many images, so O(k n) extraction is large
    # relative to selective query work.
    bench = generate_benchmark(
        WikimediaConfig(
            n_entities=800,
            n_images=2500,
            n_misc_triples=3000,
            K=24,
            seed=19,
        )
    )
    db = GraphDatabase(bench.graph, bench.knn_graph)
    queries = _selective_queries(bench, k=20, count=5)

    report = benchmark.pedantic(
        lambda: run_materialization_comparison(db, queries, timeout=120),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        MATERIALIZATION_HEADERS,
        report.rows(),
        title=(
            "Sec 3.2: materialize-then-join strawman vs integrated index "
            f"(k=20, n={bench.knn_graph.num_members} members)"
        ),
    )
    write_results("materialization", table)

    assert report.setup_vs_integrated > 2.0, (
        "materialization setup should dominate the integrated engine's "
        f"total; got ratio {report.setup_vs_integrated:.2f}"
    )
    benchmark.extra_info["setup_s"] = report.mean_materialize
    benchmark.extra_info["integrated_s"] = report.mean_integrated
    benchmark.extra_info["ratio"] = report.setup_vs_integrated
