"""Figure 3 regeneration (E8): Precision@k of the four retrieval
strategies on the Anuran-like and DryBean-like datasets.

Expected shapes (Sec. 6.3): kNN precision decreases with k; reverse is
consistently below kNN; union below kNN; intersection competitive with
kNN and overtaking it at larger k on the Anuran-like data; intersection
returns at most k results and union at least k.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_results
from repro.datasets.classification import make_anuran_like, make_drybean_like
from repro.experiments.figure3 import (
    FIGURE3_HEADERS,
    figure3_rows,
    run_figure3,
)
from repro.experiments.report import format_table

# Scaled-down datasets (same class-size profile) so the O(n K) reverse
# computations stay laptop-friendly; K scales accordingly.
SCALE = 0.12
K = 40
KS = list(range(5, K + 1, 5))

DATASETS = {
    "anuran": lambda: make_anuran_like(seed=10, scale=SCALE),
    "drybean": lambda: make_drybean_like(seed=11, scale=SCALE),
}


@pytest.mark.parametrize("name", list(DATASETS))
def test_fig3_dataset(benchmark, name):
    points, labels = DATASETS[name]()

    def run():
        return run_figure3(points, labels, K=K, ks=KS)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        FIGURE3_HEADERS,
        figure3_rows(rows),
        title=f"Figure 3 ({name}-like): average Precision@k",
    )
    write_results(f"figure3_{name}", table)

    by = {(p.strategy, p.k): p for p in rows}
    # kNN precision decreases from small k to large k.
    assert by[("knn", KS[0])].precision >= by[("knn", KS[-1])].precision
    for k in KS:
        # Result-size ordering (Sec. 6.3's closing observation).
        assert by[("intersection", k)].avg_result_size <= k + 1e-9
        assert by[("union", k)].avg_result_size >= k - 1e-9
        # Reverse and union below kNN (consistent finding in the paper).
        assert by[("reverse", k)].precision <= by[("knn", k)].precision + 0.03
        assert by[("union", k)].precision <= by[("knn", k)].precision + 0.03
    # Intersection is competitive with kNN: within a few points at the
    # largest k (and often above it, per the paper).
    assert (
        by[("intersection", KS[-1])].precision
        >= by[("knn", KS[-1])].precision - 0.05
    )
    benchmark.extra_info["knn_p_at_5"] = by[("knn", 5)].precision
    benchmark.extra_info["knn_p_at_K"] = by[("knn", K)].precision
    benchmark.extra_info["intersection_p_at_K"] = by[("intersection", K)].precision
