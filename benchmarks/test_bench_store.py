"""Cold-start benchmark of the persistent on-disk index format.

One pytest-benchmark entry per lifecycle stage of ``repro.store``:
``save`` serializes the benchmark database, the cold-start pair
measures build-to-first-query (parse the ``.npz`` bundle, build the
succinct indexes, answer a minimal probe — what ``repro query --data``
pays) against load-to-first-query (mmap the index file, verify the
checksum, answer the same probe — what ``--from-index`` pays), and the
steady-state pair runs the full workload over the built and the mapped
database. Solutions are asserted identical — the mmap views must be
invisible to query results — and the table is written to
``benchmarks/results/store_timing.txt``.

The cold-start assertion is not hardware-gated: the speedup is a ratio
of two single-threaded paths on the same machine, and the load path is
O(#structures) while the build path is O(bytes), so the floor below is
conservative at benchmark scale (the Figure-2-scale acceptance run
measures 11-14x).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import QUERY_TIMEOUT, write_results
from repro.engines.database import GraphDatabase
from repro.engines.ring_knn import RingKnnEngine
from repro.graph.io import load_bundle, save_bundle
from repro.query.parser import parse_query
from repro.store import load, save

#: Floor on load-vs-build cold-start speedup (acceptance: >= 10x at
#: Figure-2 scale; the benchmark database is larger, which widens it).
MIN_COLD_START_SPEEDUP = 5.0

#: Ceiling on mapped steady-state time relative to the built database
#: (page-resident mmap views should be indistinguishable from heap).
MAX_MAPPED_STEADY_RATIO = 1.5

BEST_OF_ROUNDS = 3

_collected: dict[str, dict] = {}


def _flat_queries(workload):
    return [
        query
        for _family, family_queries in sorted(workload.items())
        for query in family_queries
    ]


def _best_of(fn, rounds: int = BEST_OF_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _steady(database, queries) -> dict:
    engine = RingKnnEngine(database)
    started = time.perf_counter()
    solutions = 0
    timeouts = 0
    for query in queries:
        result = engine.evaluate(query, timeout=QUERY_TIMEOUT)
        solutions += len(result.solutions)
        timeouts += int(result.timed_out)
    return {
        "total_s": time.perf_counter() - started,
        "solutions": solutions,
        "timeouts": timeouts,
    }


@pytest.fixture(scope="module")
def store_paths(tmp_path_factory, wikimedia_bench, database):
    tmpdir = tmp_path_factory.mktemp("bench_store")
    bundle_path = tmpdir / "bench.npz"
    save_bundle(
        bundle_path, wikimedia_bench.graph, wikimedia_bench.knn_graph,
        wikimedia_bench.points,
    )
    return {"bundle": bundle_path, "index": tmpdir / "bench.idx"}


def test_store_save(benchmark, database, store_paths):
    path = store_paths["index"]

    def timed_save() -> dict:
        started = time.perf_counter()
        nbytes = save(database, path)
        return {"total_s": time.perf_counter() - started, "bytes": nbytes}

    entry = benchmark.pedantic(timed_save, rounds=1, iterations=1)
    benchmark.extra_info.update(entry)
    _collected["save"] = entry


def test_store_cold_start(benchmark, database, store_paths):
    probe = parse_query("(?x, 0, ?y)")
    bundle_path, path = store_paths["bundle"], store_paths["index"]
    if not path.exists():
        save(database, path)

    def build_first() -> None:
        graph, knn_graph, _points = load_bundle(bundle_path)
        fresh = GraphDatabase(graph, knn_graph)
        RingKnnEngine(fresh).evaluate(probe, timeout=None, limit=1)

    def load_first() -> None:
        mapped = load(path)
        RingKnnEngine(mapped.database).evaluate(probe, timeout=None, limit=1)
        mapped.close()

    build_first_s = _best_of(build_first)
    load_first_s = benchmark.pedantic(
        lambda: _best_of(load_first), rounds=1, iterations=1
    )
    speedup = build_first_s / load_first_s if load_first_s > 0 else 0.0
    entry = {
        "build_first_query_s": build_first_s,
        "load_first_query_s": load_first_s,
        "speedup_vs_build": speedup,
    }
    benchmark.extra_info.update(entry)
    _collected["cold_start"] = entry

    assert speedup >= MIN_COLD_START_SPEEDUP, (
        f"mmap load-to-first-query reached only {speedup:.1f}x over the "
        f"bundle-parse-and-build path (floor {MIN_COLD_START_SPEEDUP}x)"
    )


def test_store_steady_parity(benchmark, database, store_paths, workload):
    path = store_paths["index"]
    if not path.exists():
        save(database, path)
    queries = _flat_queries(workload)

    built = _steady(database, queries)  # warms parent-side memos too
    built = _steady(database, queries)
    store = load(path)
    try:
        mapped = benchmark.pedantic(
            lambda: _steady(store.database, queries), rounds=1, iterations=1
        )
    finally:
        store.close()

    if not built["timeouts"] and not mapped["timeouts"]:
        assert mapped["solutions"] == built["solutions"], (
            "mmap-loaded index changed the solution count"
        )
    ratio = (
        mapped["total_s"] / built["total_s"] if built["total_s"] > 0 else 0.0
    )
    entry = {
        "built_steady_s": built["total_s"],
        "mapped_steady_s": mapped["total_s"],
        "parity_vs_built": ratio,
        "solutions": mapped["solutions"],
        "timeouts": mapped["timeouts"],
    }
    benchmark.extra_info.update(entry)
    _collected["steady"] = entry

    if not built["timeouts"] and not mapped["timeouts"]:
        assert ratio <= MAX_MAPPED_STEADY_RATIO, (
            f"mapped steady state ran {ratio:.2f}x of built — mmap views "
            "should be indistinguishable once pages are resident"
        )


def test_store_report():
    lines = ["persistent index store (repro.store) timings"]
    entry = _collected.get("save")
    if entry is not None:
        lines.append(
            f"  save: {entry['total_s'] * 1e3:.2f} ms "
            f"({entry['bytes']} bytes)"
        )
    entry = _collected.get("cold_start")
    if entry is not None:
        lines.append(
            f"  build-to-first-query: "
            f"{entry['build_first_query_s'] * 1e3:.2f} ms"
        )
        lines.append(
            f"  load-to-first-query:  "
            f"{entry['load_first_query_s'] * 1e3:.2f} ms "
            f"({entry['speedup_vs_build']:.1f}x)"
        )
    entry = _collected.get("steady")
    if entry is not None:
        lines.append(
            f"  steady state: mapped {entry['mapped_steady_s']:.3f}s vs "
            f"built {entry['built_steady_s']:.3f}s "
            f"(parity {entry['parity_vs_built']:.2f}x, "
            f"{entry['solutions']} solutions)"
        )
    text = "\n".join(lines)
    write_results("store_timing", text)
    print(text)
