"""Micro-benchmarks of the succinct primitives.

Not a paper artifact — a performance-regression guard over the
operations every query spends its time in: bitvector rank/select,
wavelet-tree rank / ``range_next_value``, Ring binding steps, and the
K-NN structure's range computations. These use pytest-benchmark's
normal multi-round measurement (unlike the one-shot harness benches).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.triples import GraphData
from repro.knn.builders import build_knn_graph_bruteforce
from repro.knn.succinct import KnnRing
from repro.ring.index import RingIndex
from repro.ring.pattern import RingPatternState
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_tree import WaveletTree


@pytest.fixture(scope="module")
def micro_data():
    rng = np.random.default_rng(42)
    bits = rng.integers(0, 2, 200_000)
    bv = BitVector(bits)
    seq = rng.integers(0, 5_000, 100_000)
    wt = WaveletTree(seq, 5_000)
    graph = GraphData(rng.integers(0, 3_000, size=(50_000, 3)))
    ring = RingIndex(graph)
    points = rng.normal(size=(2_000, 4))
    knn = KnnRing(build_knn_graph_bruteforce(points, K=16))
    return {
        "bv": bv,
        "wt": wt,
        "ring": ring,
        "graph": graph,
        "knn": knn,
        "rng": rng,
    }


def test_bitvector_rank(benchmark, micro_data):
    bv = micro_data["bv"]
    positions = np.linspace(0, len(bv), 64, dtype=np.int64)

    def run():
        total = 0
        for p in positions:
            total += bv.rank1(int(p))
        return total

    benchmark(run)


def test_bitvector_select(benchmark, micro_data):
    bv = micro_data["bv"]
    indices = np.linspace(1, bv.n_ones, 64, dtype=np.int64)

    def run():
        total = 0
        for j in indices:
            total += bv.select1(int(j))
        return total

    benchmark(run)


def test_wavelet_rank(benchmark, micro_data):
    wt = micro_data["wt"]

    def run():
        total = 0
        for c in range(0, 5_000, 100):
            total += wt.rank(c, 50_000)
        return total

    benchmark(run)


def test_wavelet_range_next_value(benchmark, micro_data):
    wt = micro_data["wt"]

    def run():
        total = 0
        for c in range(0, 5_000, 100):
            v = wt.range_next_value(10_000, 60_000, c)
            total += v if v is not None else 0
        return total

    benchmark(run)


def test_ring_bind_pair(benchmark, micro_data):
    ring = micro_data["ring"]
    graph = micro_data["graph"]
    rows = graph.spo[:: max(1, len(graph) // 64)]

    def run():
        total = 0
        for s, p, _o in rows:
            lo, hi = ring.pair_range("s", int(s), int(p))
            total += hi - lo
        return total

    benchmark(run)


def test_ring_full_pattern_walk(benchmark, micro_data):
    ring = micro_data["ring"]
    graph = micro_data["graph"]
    rows = graph.spo[:: max(1, len(graph) // 32)]

    def run():
        total = 0
        for s, p, o in rows:
            state = RingPatternState(ring, {"p": int(p)})
            state.bind("s", int(s))
            state.bind("o", int(o))
            total += state.count()
        return total

    benchmark(run)


def test_knn_forward_backward_ranges(benchmark, micro_data):
    knn = micro_data["knn"]
    members = knn.members[::32]

    def run():
        total = 0
        for u in members:
            lo, hi = knn.forward_range(int(u), 8)
            total += hi - lo
            lo, hi = knn.backward_range(int(u), 8)
            total += hi - lo
        return total

    benchmark(run)
