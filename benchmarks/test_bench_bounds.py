"""Bounds ablation (E10): measured elimination work vs the LP bound,
and the Sec. 4.2 variable-ordering contrast on Example 4.

Shapes asserted: the LP bound ``Q*`` upper-bounds the measured output;
the degree-aware program beats the opaque-relation AGM bound on
Example-4-style queries; and a *bad* fixed order (binding the clause's
target first) performs at least as many elimination attempts as the
topological order of Thm. 2.
"""

from __future__ import annotations

from benchmarks.conftest import QUERY_TIMEOUT, write_results
from repro.experiments.bounds_ablation import (
    BOUNDS_HEADERS,
    bounds_rows,
    run_bounds_ablation,
)
from repro.experiments.report import format_table
from repro.ltj.engine import LTJEngine
from repro.ltj.ordering import FixedOrdering
from repro.engines.ring_knn import RingKnnEngine
from repro.query.model import Var


def test_bounds_vs_measurements(benchmark, database, workload):
    queries = (
        workload["Q1"][:2] + workload["Q1b"][:2] + workload["Q3"][:2]
    )
    rows = benchmark.pedantic(
        lambda: run_bounds_ablation(database, queries, timeout=QUERY_TIMEOUT),
        rounds=1,
        iterations=1,
    )
    write_results(
        "bounds",
        format_table(
            BOUNDS_HEADERS,
            bounds_rows(rows),
            title="E10: LP bound Q* vs AGM vs measured elimination attempts",
        ),
    )
    for row in rows:
        assert row.solutions <= row.q_star + 1e-6
        assert row.q_star <= row.agm + 1e-6  # degree-aware never looser


def test_ordering_contrast_example4(benchmark, database, wikimedia_bench):
    """Sec. 4.2: on Q = (x,R,y), (y,S,z), x <|_k z, the order binding z
    before x costs more eliminations than the topological order."""
    from repro.query.parser import parse_query

    dep = wikimedia_bench.depicts
    attr = wikimedia_bench.predicates["attr"]
    query = parse_query(f"(?x, {dep}, ?y) . (?y, {attr}, ?z2) . knn(?y, ?z, 8)")

    def attempts_for(order):
        engine = RingKnnEngine(database)
        relations = engine.compile(query)
        ltj = LTJEngine(relations, ordering=FixedOrdering(order), timeout=60)
        ltj.evaluate()
        return ltj.stats.attempts

    x, y, z, z2 = Var("x"), Var("y"), Var("z"), Var("z2")
    good_order = [y, x, z2, z]   # respects y before z (topological)
    bad_order = [z, y, x, z2]    # binds the k-NN target first

    def run():
        return attempts_for(good_order), attempts_for(bad_order)

    good, bad = benchmark.pedantic(run, rounds=1, iterations=1)
    write_results(
        "ordering_contrast",
        format_table(
            ["order", "elimination attempts"],
            [["topological (y,x,_,z)", good], ["target-first (z,...)", bad]],
            title="Sec 4.2: elimination work under good vs bad variable orders",
        ),
    )
    assert bad >= good, (bad, good)
    benchmark.extra_info["good_attempts"] = good
    benchmark.extra_info["bad_attempts"] = bad
