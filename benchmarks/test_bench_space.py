"""Space comparison (E6): the Sec. 6.2 storage paragraph.

Paper numbers (at 617M triples): Ring + succinct K-NN = 12.15 GB,
almost exactly the raw-data footprint it replaces; the baseline's plain
K-NN adjacency pushes it to 17.99 GB. The shapes asserted here:
``ring <= ~raw`` and ``baseline > ring``.
"""

from __future__ import annotations

from benchmarks.conftest import write_results
from repro.experiments.report import format_table
from repro.experiments.space import SPACE_HEADERS, run_space_comparison


def test_space_comparison(benchmark, database):
    report = benchmark.pedantic(
        lambda: run_space_comparison(database), rounds=1, iterations=1
    )
    table = format_table(
        SPACE_HEADERS,
        report.rows(),
        title="Sec 6.2: index space (Ring variants vs baseline vs raw)",
    )
    write_results("space", table)

    assert report.baseline_bytes > report.ring_bytes
    assert report.ring_vs_raw < 1.5, (
        "the Ring (+ succinct K-NN) should stay within the raw-data "
        f"order of magnitude; got ratio {report.ring_vs_raw:.2f}"
    )
    benchmark.extra_info["ring_MiB"] = report.ring_bytes / 2**20
    benchmark.extra_info["baseline_MiB"] = report.baseline_bytes / 2**20
    benchmark.extra_info["raw_MiB"] = report.raw_bytes / 2**20
    benchmark.extra_info["baseline_vs_ring"] = report.baseline_vs_ring
