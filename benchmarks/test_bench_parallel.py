"""Scaling benchmark of batch serving over the shared-memory pool.

One pytest-benchmark entry per pool size (1, 2, 4) serves the full
benchmark workload through :class:`QueryScheduler` over a warm
worker pool, plus a serial ``auto``-loop reference entry. Pool
warm-up — forking the workers and flattening the succinct indexes into
shared-memory segments — is measured separately from the steady-state
batch time, because a server pays it once per database, not per batch.
Each entry's ``extra_info`` records warm-up, steady-state total,
solutions (asserted identical to serial — the shm transport must never
change results) and the steady-state speedup over the serial
reference, and the curve is written to
``benchmarks/results/parallel_scaling.txt``.

Wall-clock speedup is capped by the usable core count, so the
acceptance assertions are hardware-gated: with >= 4 usable cores the
workers=4 entry must clear a 2x steady-state speedup; on fewer cores
(where workers merely time-slice the CPU and any "speedup" is
physically impossible) the entries must instead stay within a bounded
overhead of the serial loop — proving the transport itself costs
almost nothing even when parallelism cannot pay.
"""

from __future__ import annotations

import time

import pytest

import numpy as np

from benchmarks.conftest import QUERY_TIMEOUT, write_results
from repro.bench.harness import usable_cores
from repro.knn.distance_index import DistanceRangeIndex
from repro.parallel.scheduler import QueryScheduler
from repro.parallel.shm import StructureShm, attach, prime_hot_caches

WORKER_COUNTS = (1, 2, 4)

#: Ceiling on steady-state time relative to serial when too few cores
#: exist for real parallelism (covers per-worker cold caches + IPC).
MAX_SINGLE_CORE_OVERHEAD = 1.6

#: Ceiling on the shm-attached leap_within loop relative to the built
#: structure. The attached views are numpy arrays over the shared
#: buffer; any regression that routes a hot-path lookup through them
#: (instead of the plain-scalar ``_*_i`` mirrors) re-enters numpy
#: dispatch per probe and measured at 1.07-1.09x before the mirrors
#: covered ``_distances``. Parity now measures ~1.01x; the bound is
#: generous for timer noise while still catching a scalar-leak relapse.
MAX_ATTACHED_LEAP_RATIO = 1.3

_collected: dict[str, dict] = {}


def _flat_queries(workload):
    return [
        query
        for _family, family_queries in sorted(workload.items())
        for query in family_queries
    ]


def _serve_batch(database, queries, workers):
    scheduler = QueryScheduler(database, workers=workers)
    try:
        started = time.perf_counter()
        scheduler.warmup()
        warmup_s = time.perf_counter() - started
        started = time.perf_counter()
        results = scheduler.run_batch(queries, timeout=QUERY_TIMEOUT)
        steady_s = time.perf_counter() - started
    finally:
        scheduler.close()
    return {
        "cpu_cores": usable_cores(),
        "warmup_s": warmup_s,
        "total_s": steady_s,
        "solutions": sum(len(r.solutions) for r in results),
        "timeouts": sum(int(r.timed_out) for r in results),
    }


@pytest.fixture(scope="module", autouse=True)
def _warm_database(database, workload):
    # One untimed serial pass so the parent-side wavelet memos are warm
    # before any measured entry; otherwise whichever entry runs first
    # pays a one-time cache fill the others do not.
    _serve_batch(database, _flat_queries(workload), workers=1)


def _serial_reference(database, workload):
    entry = _collected.get("serial")
    if entry is None:
        entry = _serve_batch(database, _flat_queries(workload), workers=1)
        _collected["serial"] = entry
    return entry


def test_parallel_serial_reference(benchmark, database, workload):
    queries = _flat_queries(workload)
    entry = benchmark.pedantic(
        lambda: _serve_batch(database, queries, workers=1),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(entry)
    _collected["serial"] = entry


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_scaling(benchmark, database, workload, workers):
    queries = _flat_queries(workload)
    entry = benchmark.pedantic(
        lambda: _serve_batch(database, queries, workers=workers),
        rounds=1,
        iterations=1,
    )
    serial = _serial_reference(database, workload)
    if not entry["timeouts"] and not serial["timeouts"]:
        assert entry["solutions"] == serial["solutions"], (
            "shared-memory batch serving changed the solution count"
        )
    entry["speedup_vs_serial"] = (
        serial["total_s"] / entry["total_s"] if entry["total_s"] > 0 else 0.0
    )
    benchmark.extra_info.update(entry)
    _collected[f"workers={workers}"] = entry

    cores = usable_cores()
    if workers >= 4 and cores >= 4:
        assert entry["speedup_vs_serial"] >= 2.0, (
            f"workers={workers} on {cores} cores reached only "
            f"{entry['speedup_vs_serial']:.2f}x steady-state speedup"
        )
    elif workers >= 2 and cores < workers:
        assert entry["total_s"] <= serial["total_s"] * MAX_SINGLE_CORE_OVERHEAD, (
            f"workers={workers} time-slicing {cores} core(s) cost "
            f"{entry['total_s']:.3f}s vs serial {serial['total_s']:.3f}s — "
            "transport overhead above the bounded-overhead ceiling"
        )


def test_parallel_scaling_report(database, workload):
    serial = _serial_reference(database, workload)
    lines = [
        "batch serving over the shared-memory worker pool "
        f"(steady state; warm-up reported separately; "
        f"{usable_cores()} usable core(s))",
        f"  serial auto loop: {serial['total_s']:.3f}s "
        f"({serial['solutions']} solutions)",
    ]
    for workers in WORKER_COUNTS:
        entry = _collected.get(f"workers={workers}")
        if entry is None:
            continue
        lines.append(
            f"  workers={workers}: steady {entry['total_s']:.3f}s "
            f"(speedup {entry['speedup_vs_serial']:.2f}x, "
            f"warmup {entry['warmup_s']:.3f}s, "
            f"{entry['solutions']} solutions)"
        )
    text = "\n".join(lines)
    write_results("parallel_scaling", text)
    print(text)


def _leap_sweep(index, members, d):
    # Every member leaps from every third candidate value — the same
    # probe mix the LTJ intersection generates, minus the engine.
    out = 0
    started = time.perf_counter()
    for u in members:
        for lower in range(0, len(members), 3):
            v = index.leap_within(u, d, lower)
            if v is not None:
                out += v
    return time.perf_counter() - started, out


def test_parallel_attached_leap_parity(benchmark):
    rng = np.random.default_rng(11)
    points = rng.normal(size=(300, 8))
    d_max = 4.0
    built = DistanceRangeIndex(points, d_max)
    members = built.members.tolist()

    owner = StructureShm.create(built)
    attached_handle = attach(owner.manifest)
    attached = attached_handle.structure
    try:
        prime_hot_caches(attached)
        d = d_max * 0.75
        _leap_sweep(built, members, d)  # warm both before timing
        _leap_sweep(attached, members, d)
        built_s, built_sum = _leap_sweep(built, members, d)
        attached_s, attached_sum = benchmark.pedantic(
            lambda: _leap_sweep(attached, members, d), rounds=1, iterations=1
        )
        assert attached_sum == built_sum, (
            "shm-attached DistanceRangeIndex changed leap_within results"
        )
        ratio = attached_s / built_s if built_s > 0 else 0.0
        benchmark.extra_info.update(
            {
                "built_leap_s": built_s,
                "attached_leap_s": attached_s,
                "attached_vs_built": ratio,
            }
        )
        assert ratio <= MAX_ATTACHED_LEAP_RATIO, (
            f"attached leap_within ran {ratio:.2f}x of built — a hot-path "
            "lookup is bypassing the plain-scalar mirrors and re-entering "
            "numpy dispatch per probe"
        )
    finally:
        # Rebind before unmapping: the pedantic lambda's closure cell
        # would otherwise keep views into the segment alive past close.
        attached = None
        attached_handle.close()
        owner.close()
