"""Scaling benchmark of batch serving over the shared-memory pool.

One pytest-benchmark entry per pool size (1, 2, 4) serves the full
benchmark workload through :class:`QueryScheduler` over a warm
worker pool, plus a serial ``auto``-loop reference entry. Pool
warm-up — forking the workers and flattening the succinct indexes into
shared-memory segments — is measured separately from the steady-state
batch time, because a server pays it once per database, not per batch.
Each entry's ``extra_info`` records warm-up, steady-state total,
solutions (asserted identical to serial — the shm transport must never
change results) and the steady-state speedup over the serial
reference, and the curve is written to
``benchmarks/results/parallel_scaling.txt``.

Wall-clock speedup is capped by the usable core count, so the
acceptance assertions are hardware-gated: with >= 4 usable cores the
workers=4 entry must clear a 2x steady-state speedup; on fewer cores
(where workers merely time-slice the CPU and any "speedup" is
physically impossible) the entries must instead stay within a bounded
overhead of the serial loop — proving the transport itself costs
almost nothing even when parallelism cannot pay.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import QUERY_TIMEOUT, write_results
from repro.bench.harness import usable_cores
from repro.parallel.scheduler import QueryScheduler

WORKER_COUNTS = (1, 2, 4)

#: Ceiling on steady-state time relative to serial when too few cores
#: exist for real parallelism (covers per-worker cold caches + IPC).
MAX_SINGLE_CORE_OVERHEAD = 1.6

_collected: dict[str, dict] = {}


def _flat_queries(workload):
    return [
        query
        for _family, family_queries in sorted(workload.items())
        for query in family_queries
    ]


def _serve_batch(database, queries, workers):
    scheduler = QueryScheduler(database, workers=workers)
    try:
        started = time.perf_counter()
        scheduler.warmup()
        warmup_s = time.perf_counter() - started
        started = time.perf_counter()
        results = scheduler.run_batch(queries, timeout=QUERY_TIMEOUT)
        steady_s = time.perf_counter() - started
    finally:
        scheduler.close()
    return {
        "cpu_cores": usable_cores(),
        "warmup_s": warmup_s,
        "total_s": steady_s,
        "solutions": sum(len(r.solutions) for r in results),
        "timeouts": sum(int(r.timed_out) for r in results),
    }


@pytest.fixture(scope="module", autouse=True)
def _warm_database(database, workload):
    # One untimed serial pass so the parent-side wavelet memos are warm
    # before any measured entry; otherwise whichever entry runs first
    # pays a one-time cache fill the others do not.
    _serve_batch(database, _flat_queries(workload), workers=1)


def _serial_reference(database, workload):
    entry = _collected.get("serial")
    if entry is None:
        entry = _serve_batch(database, _flat_queries(workload), workers=1)
        _collected["serial"] = entry
    return entry


def test_parallel_serial_reference(benchmark, database, workload):
    queries = _flat_queries(workload)
    entry = benchmark.pedantic(
        lambda: _serve_batch(database, queries, workers=1),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(entry)
    _collected["serial"] = entry


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_scaling(benchmark, database, workload, workers):
    queries = _flat_queries(workload)
    entry = benchmark.pedantic(
        lambda: _serve_batch(database, queries, workers=workers),
        rounds=1,
        iterations=1,
    )
    serial = _serial_reference(database, workload)
    if not entry["timeouts"] and not serial["timeouts"]:
        assert entry["solutions"] == serial["solutions"], (
            "shared-memory batch serving changed the solution count"
        )
    entry["speedup_vs_serial"] = (
        serial["total_s"] / entry["total_s"] if entry["total_s"] > 0 else 0.0
    )
    benchmark.extra_info.update(entry)
    _collected[f"workers={workers}"] = entry

    cores = usable_cores()
    if workers >= 4 and cores >= 4:
        assert entry["speedup_vs_serial"] >= 2.0, (
            f"workers={workers} on {cores} cores reached only "
            f"{entry['speedup_vs_serial']:.2f}x steady-state speedup"
        )
    elif workers >= 2 and cores < workers:
        assert entry["total_s"] <= serial["total_s"] * MAX_SINGLE_CORE_OVERHEAD, (
            f"workers={workers} time-slicing {cores} core(s) cost "
            f"{entry['total_s']:.3f}s vs serial {serial['total_s']:.3f}s — "
            "transport overhead above the bounded-overhead ceiling"
        )


def test_parallel_scaling_report(database, workload):
    serial = _serial_reference(database, workload)
    lines = [
        "batch serving over the shared-memory worker pool "
        f"(steady state; warm-up reported separately; "
        f"{usable_cores()} usable core(s))",
        f"  serial auto loop: {serial['total_s']:.3f}s "
        f"({serial['solutions']} solutions)",
    ]
    for workers in WORKER_COUNTS:
        entry = _collected.get(f"workers={workers}")
        if entry is None:
            continue
        lines.append(
            f"  workers={workers}: steady {entry['total_s']:.3f}s "
            f"(speedup {entry['speedup_vs_serial']:.2f}x, "
            f"warmup {entry['warmup_s']:.3f}s, "
            f"{entry['solutions']} solutions)"
        )
    text = "\n".join(lines)
    write_results("parallel_scaling", text)
    print(text)
