"""Scaling benchmark of the domain-sharded parallel-knn engine.

One pytest-benchmark entry per pool size (1, 2, 4) runs the full
benchmark workload under :class:`ParallelRingKnnEngine`, plus a serial
Ring-KNN reference entry. Each entry's ``extra_info`` records total
time, solutions (asserted identical to serial — sharding must never
change results) and the speedup over the serial reference, and the
curve is written to ``benchmarks/results/parallel_scaling.txt``.

Expected shape: pool size 1 (inline sharding) tracks serial closely —
the shard machinery itself is cheap; real pools amortize their dispatch
overhead only once per-shard work dominates, so at this laptop scale
the multi-worker speedup is modest and the point of the curve is to
catch *regressions* in sharding overhead, not to demonstrate big wins.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import QUERY_TIMEOUT, write_results
from repro.engines.parallel_knn import ParallelRingKnnEngine
from repro.engines.ring_knn import RingKnnEngine

WORKER_COUNTS = (1, 2, 4)

_collected: dict[str, dict] = {}


def _flat_queries(workload):
    return [
        query
        for _family, family_queries in sorted(workload.items())
        for query in family_queries
    ]


def _run_workload(engine, queries):
    total = 0.0
    solutions = 0
    timeouts = 0
    for query in queries:
        started = time.perf_counter()
        result = engine.evaluate(query, timeout=QUERY_TIMEOUT)
        total += time.perf_counter() - started
        solutions += len(result.solutions)
        timeouts += int(result.timed_out)
    return {"total_s": total, "solutions": solutions, "timeouts": timeouts}


def test_parallel_serial_reference(benchmark, database, workload):
    queries = _flat_queries(workload)
    engine = RingKnnEngine(database)
    entry = benchmark.pedantic(
        lambda: _run_workload(engine, queries), rounds=1, iterations=1
    )
    benchmark.extra_info.update(entry)
    _collected["serial"] = entry


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_scaling(benchmark, database, workload, workers):
    queries = _flat_queries(workload)
    engine = ParallelRingKnnEngine(database, workers=workers)
    entry = benchmark.pedantic(
        lambda: _run_workload(engine, queries), rounds=1, iterations=1
    )
    serial = _collected.get("serial")
    if serial is None:
        serial = _run_workload(RingKnnEngine(database), queries)
        _collected["serial"] = serial
    if not entry["timeouts"] and not serial["timeouts"]:
        assert entry["solutions"] == serial["solutions"], (
            "sharded execution changed the solution count"
        )
    entry["speedup_vs_serial"] = (
        serial["total_s"] / entry["total_s"] if entry["total_s"] > 0 else 0.0
    )
    benchmark.extra_info.update(entry)
    _collected[f"workers={workers}"] = entry


def test_parallel_scaling_report(database, workload):
    lines = ["parallel-knn scaling over the benchmark workload"]
    serial = _collected.get("serial")
    if serial is None:
        serial = _run_workload(RingKnnEngine(database), _flat_queries(workload))
    lines.append(
        f"  serial ring-knn: {serial['total_s']:.3f}s "
        f"({serial['solutions']} solutions)"
    )
    for workers in WORKER_COUNTS:
        entry = _collected.get(f"workers={workers}")
        if entry is None:
            continue
        lines.append(
            f"  workers={workers}: {entry['total_s']:.3f}s "
            f"(speedup {entry['speedup_vs_serial']:.2f}x, "
            f"{entry['solutions']} solutions)"
        )
    text = "\n".join(lines)
    write_results("parallel_scaling", text)
    print(text)
