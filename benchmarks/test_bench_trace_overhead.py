"""Overhead of the observability layer on the Figure-2 workload.

Two claims are measured:

* **disabled** — with ``trace=None`` (the default) every recording site
  reduces to an ``is not None`` guard. The guard cost is
  micro-benchmarked directly and scaled by the number of recording-site
  hits a traced run reports, which upper-bounds the disabled overhead
  as a fraction of query time; it must stay under 3%.
* **enabled** — a full :class:`~repro.obs.trace.QueryTrace` run is
  timed against the disabled run (interleaved, min-of-rounds) and the
  slowdown reported. Tracing does real work, so this is informational,
  but it should stay within a small constant factor.

Results are written to ``benchmarks/results/trace_overhead.txt``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import QUERY_TIMEOUT, write_results
from repro.engines.ring_knn import RingKnnEngine
from repro.experiments.report import format_table
from repro.obs import QueryTrace

ROUNDS = 3
GUARD_LOOP = 1_000_000
MAX_DISABLED_OVERHEAD = 0.03

# Recording sites hit per traced event. Each leap/bind touches the
# per-variable counter, the relation counter, and (for ring/K-NN
# relations) a wavelet recorder; 4 guards per event is a safe ceiling.
GUARDS_PER_EVENT = 4


def _run_workload(engine, queries, trace_factory):
    start = time.perf_counter()
    for query in queries:
        engine.evaluate(query, timeout=QUERY_TIMEOUT, trace=trace_factory())
    return time.perf_counter() - start


def _guard_cost_per_hit() -> float:
    """Time one ``x is not None`` check (the whole disabled path)."""

    def loop(obs):
        hits = 0
        start = time.perf_counter()
        for _ in range(GUARD_LOOP):
            if obs is not None:
                hits += 1
        return time.perf_counter() - start

    # Warm up, then take the best of a few rounds of (guard - baseline).
    loop(None)
    guarded = min(loop(None) for _ in range(ROUNDS))
    trivial = min(loop(0) for _ in range(ROUNDS))  # same loop, branch taken
    return max(guarded, trivial) / GUARD_LOOP


def test_trace_overhead(benchmark, database, workload):
    engine = RingKnnEngine(database)
    queries = [q for family in workload.values() for q in family]

    # Interleave disabled/enabled rounds so drift hits both equally.
    disabled, enabled = [], []
    for _ in range(ROUNDS):
        disabled.append(_run_workload(engine, queries, lambda: None))
        enabled.append(_run_workload(engine, queries, QueryTrace))
    benchmark.pedantic(
        lambda: _run_workload(engine, queries, lambda: None),
        rounds=1,
        iterations=1,
    )
    disabled_s = min(disabled)
    enabled_s = min(enabled)
    enabled_overhead = enabled_s / disabled_s - 1.0

    # Count the recording-site hits a traced run of the workload makes.
    events = 0
    for query in queries:
        trace = QueryTrace()
        engine.evaluate(query, timeout=QUERY_TIMEOUT, trace=trace)
        totals = trace.stats or {}
        events += (
            totals.get("leap_calls", 0)
            + totals.get("attempts", 0)
            + totals.get("bindings", 0)
        )
        events += sum(ops.total for ops in trace.wavelets.values())
    guard_s = _guard_cost_per_hit()
    disabled_overhead = (guard_s * events * GUARDS_PER_EVENT) / disabled_s

    benchmark.extra_info["disabled_s"] = disabled_s
    benchmark.extra_info["enabled_s"] = enabled_s
    benchmark.extra_info["enabled_overhead"] = enabled_overhead
    benchmark.extra_info["disabled_overhead_bound"] = disabled_overhead
    write_results(
        "trace_overhead",
        format_table(
            ["mode", "workload time (s)", "overhead vs disabled"],
            [
                ["trace=None (disabled)", round(disabled_s, 3), "-"],
                [
                    "QueryTrace (enabled)",
                    round(enabled_s, 3),
                    f"{enabled_overhead:+.1%}",
                ],
                [
                    "disabled guard bound",
                    round(guard_s * events * GUARDS_PER_EVENT, 4),
                    f"{disabled_overhead:.2%} of disabled time",
                ],
            ],
            title=(
                "Tracing overhead on the Figure-2 workload "
                f"({len(queries)} queries, ring-knn, min of {ROUNDS})"
            ),
        ),
    )

    assert disabled_overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled-tracing guard bound {disabled_overhead:.2%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%} of query time"
    )
    # Enabled tracing does real counting work; it must still be in the
    # same ballpark, not a step change.
    assert enabled_s <= disabled_s * 2.0, (disabled_s, enabled_s)
